//! Snapshot build→load bit-identity and corruption rejection.
//!
//! The contract under test: a snapshot round-trip reproduces the network
//! and every warmed half-path product *bitwise* (query scores included),
//! and any corruption — a flipped byte, a truncated file, a foreign or
//! stale header — is rejected with the matching typed [`SnapshotError`],
//! never a panic and never silently wrong data.

use hetesim_core::snapshot::{self, SnapshotError};
use hetesim_core::HeteSimEngine;
use hetesim_graph::{Hin, HinBuilder, MetaPath, Schema};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch file per test case (no tempfile crate; the workspace
/// is zero-dependency).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hetesim-snap-{}-{tag}-{n}.snap",
        std::process::id()
    ))
}

struct Scratch(PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn bib_schema() -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("author").unwrap();
    let p = s.add_type("paper").unwrap();
    let c = s.add_type("conference").unwrap();
    s.add_relation("writes", a, p).unwrap();
    s.add_relation("published_in", p, c).unwrap();
    s
}

fn toy_hin() -> Hin {
    let s = bib_schema();
    let w = s.relation_id("writes").unwrap();
    let pb = s.relation_id("published_in").unwrap();
    let mut b = HinBuilder::new(s);
    b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
    b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
    b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
    b.add_edge_by_name(w, "Mary", "P3", 2.0).unwrap();
    b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
    b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
    b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
    b.build()
}

/// Builds a toy snapshot file with one warmed path and returns its bytes
/// alongside the source network.
fn toy_snapshot(tag: &str) -> (Scratch, Hin) {
    let hin = toy_hin();
    let engine = HeteSimEngine::with_threads(&hin, 1);
    let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
    let halves = engine.materialized_halves(&apc).unwrap();
    let file = Scratch(scratch(tag));
    snapshot::write_snapshot(&file.0, &hin, &[(apc, halves)]).unwrap();
    (file, hin)
}

/// All single-source score rows of a path, for bitwise comparison.
fn all_scores(engine: &HeteSimEngine, path: &MetaPath) -> Vec<u64> {
    let n = engine.hin().node_count(path.source_type());
    let mut bits = Vec::new();
    for a in 0..n as u32 {
        for s in engine.single_source(path, a).unwrap() {
            bits.push(s.to_bits());
        }
    }
    bits
}

#[test]
fn roundtrip_network_and_scores_are_bit_identical() {
    let (file, hin) = toy_snapshot("roundtrip");
    let snap = snapshot::read_snapshot(&file.0).unwrap();

    assert_eq!(snap.hin.total_nodes(), hin.total_nodes());
    assert_eq!(snap.hin.total_edges(), hin.total_edges());
    for ty in hin.schema().type_ids() {
        assert_eq!(snap.hin.node_names(ty), hin.node_names(ty));
    }
    for rel in hin.schema().relation_ids() {
        assert_eq!(snap.hin.adjacency(rel), hin.adjacency(rel));
    }

    // A cold-started engine fed the snapshot's warm halves must score
    // bitwise identically to the engine that built them.
    let warm_engine = HeteSimEngine::with_threads(&hin, 1);
    let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
    warm_engine.warm(&apc).unwrap();

    let cold_engine = HeteSimEngine::with_threads(&snap.hin, 1);
    assert_eq!(snap.warm.len(), 1);
    for w in snap.warm {
        cold_engine
            .install_halves(&w.path, w.left, w.right)
            .unwrap();
    }
    // The install seeded the cache: querying must not rebuild.
    let before = cold_engine.cache_stats().misses;
    assert_eq!(
        all_scores(&cold_engine, &apc),
        all_scores(&warm_engine, &apc)
    );
    assert_eq!(cold_engine.cache_stats().misses, before);
}

#[test]
fn info_reports_verified_summary() {
    let (file, hin) = toy_snapshot("info");
    let info = snapshot::snapshot_info(&file.0).unwrap();
    assert_eq!(info.version, snapshot::VERSION);
    assert_eq!(info.types, 3);
    assert_eq!(info.relations, 2);
    assert_eq!(info.nodes, hin.total_nodes());
    assert_eq!(info.edges, hin.total_edges());
    assert_eq!(info.warm_paths, vec!["A-P-C".to_string()]);
    assert_eq!(info.sections.len(), 4);
    assert_eq!(info.file_bytes, std::fs::metadata(&file.0).unwrap().len());
}

#[test]
fn every_single_flipped_byte_is_rejected() {
    let (file, _) = toy_snapshot("flip");
    let bytes = std::fs::read(&file.0).unwrap();
    let mutant = Scratch(scratch("flip-mutant"));
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        std::fs::write(&mutant.0, &bad).unwrap();
        assert!(
            snapshot::read_snapshot(&mutant.0).is_err(),
            "flip at byte {i} of {} loaded successfully",
            bytes.len()
        );
    }
}

#[test]
fn payload_flip_is_a_checksum_error() {
    let (file, _) = toy_snapshot("crc");
    let mut bytes = std::fs::read(&file.0).unwrap();
    let last = bytes.len() - 1; // deep inside the last section payload
    bytes[last] ^= 0xFF;
    std::fs::write(&file.0, &bytes).unwrap();
    match snapshot::read_snapshot(&file.0) {
        Err(SnapshotError::ChecksumMismatch {
            stored, computed, ..
        }) => {
            assert_ne!(stored, computed)
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn preamble_flip_is_a_header_checksum_error() {
    let (file, _) = toy_snapshot("hdrcrc");
    let mut bytes = std::fs::read(&file.0).unwrap();
    bytes[33] ^= 0x01; // inside the section table
    std::fs::write(&file.0, &bytes).unwrap();
    match snapshot::read_snapshot(&file.0) {
        Err(SnapshotError::ChecksumMismatch { section, .. }) => {
            assert_eq!(section, "header")
        }
        other => panic!("expected header ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncation_is_rejected_at_every_length() {
    let (file, _) = toy_snapshot("trunc");
    let bytes = std::fs::read(&file.0).unwrap();
    let cut_file = Scratch(scratch("trunc-cut"));
    for cut in 0..bytes.len() {
        std::fs::write(&cut_file.0, &bytes[..cut]).unwrap();
        let err = snapshot::read_snapshot(&cut_file.0).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let (file, _) = toy_snapshot("magic");
    let bytes = std::fs::read(&file.0).unwrap();

    let mut not_snap = bytes.clone();
    not_snap[0] = b'X';
    std::fs::write(&file.0, &not_snap).unwrap();
    assert!(matches!(
        snapshot::read_snapshot(&file.0),
        Err(SnapshotError::BadMagic { .. })
    ));

    let mut future = bytes.clone();
    future[8] = 99; // version little-endian low byte
    std::fs::write(&file.0, &future).unwrap();
    assert!(matches!(
        snapshot::read_snapshot(&file.0),
        Err(SnapshotError::UnsupportedVersion {
            found: 99,
            supported: snapshot::VERSION
        })
    ));
}

#[test]
fn missing_file_is_io_error() {
    let err = snapshot::read_snapshot(std::path::Path::new("/no/such/net.snap")).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)));
}

/// Random small bibliographic networks: the round-trip must be bitwise
/// exact for arbitrary edge sets, including parallel edges (summed at
/// build time, before the snapshot ever sees them).
fn arb_hin() -> impl Strategy<Value = Hin> {
    let authors = 1..5usize;
    let papers = 1..6usize;
    let confs = 1..4usize;
    (authors, papers, confs).prop_flat_map(|(na, np, nc)| {
        let writes = proptest::collection::vec((0..na, 0..np, 1u8..=4), 1..12);
        let pubs = proptest::collection::vec((0..np, 0..nc, 1u8..=4), 1..10);
        (writes, pubs).prop_map(|(we, pe)| {
            let s = bib_schema();
            let w = s.relation_id("writes").unwrap();
            let pb = s.relation_id("published_in").unwrap();
            let mut b = HinBuilder::new(s);
            for (a, p, wt) in we {
                b.add_edge_by_name(w, &format!("a{a}"), &format!("p{p}"), wt as f64)
                    .unwrap();
            }
            for (p, c, wt) in pe {
                b.add_edge_by_name(pb, &format!("p{p}"), &format!("c{c}"), wt as f64)
                    .unwrap();
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_network_roundtrips_bitwise(hin in arb_hin()) {
        let engine = HeteSimEngine::with_threads(&hin, 1);
        let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
        let apa = MetaPath::parse(hin.schema(), "A-P-A").unwrap();
        let warm = vec![
            (apc.clone(), engine.materialized_halves(&apc).unwrap()),
            (apa.clone(), engine.materialized_halves(&apa).unwrap()),
        ];
        let file = Scratch(scratch("prop"));
        snapshot::write_snapshot(&file.0, &hin, &warm).unwrap();
        let snap = snapshot::read_snapshot(&file.0).unwrap();

        for rel in hin.schema().relation_ids() {
            prop_assert_eq!(snap.hin.adjacency(rel), hin.adjacency(rel));
            let orig: Vec<u64> = hin.adjacency(rel).values().iter().map(|v| v.to_bits()).collect();
            let back: Vec<u64> = snap.hin.adjacency(rel).values().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(orig, back);
        }
        for ty in hin.schema().type_ids() {
            prop_assert_eq!(snap.hin.node_names(ty), hin.node_names(ty));
        }

        let cold = HeteSimEngine::with_threads(&snap.hin, 1);
        prop_assert_eq!(snap.warm.len(), 2);
        for w in snap.warm {
            cold.install_halves(&w.path, w.left, w.right).unwrap();
        }
        for path in [&apc, &apa] {
            prop_assert_eq!(all_scores(&cold, path), all_scores(&engine, path));
        }
    }
}
