//! Pruned top-k relevance search (Section 4.6, optimization 3).
//!
//! "The related objects to a searched object are a very small percentage of
//! all objects in the target type" — so instead of scoring every target, we
//! walk only the middle objects the source actually reaches and accumulate
//! meeting mass into the targets that share them. Targets never touched are
//! provably zero and are skipped entirely.

use crate::cache::Halves;
use crate::{Ranked, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Right-half nnz below which [`top_k_parallel`] stays on the serial pruned
/// path: the parallel variant scans every target's right row, so it only
/// wins once that scan is big enough to amortize thread startup.
const PARALLEL_MIN_RIGHT_NNZ: usize = 1 << 16;

/// Left-half nnz below which [`top_k_pairs_parallel`] stays serial. The
/// all-pairs join does a full pruned accumulation per source, so far less
/// total mass is needed before threads pay off.
const PARALLEL_MIN_LEFT_NNZ: usize = 1 << 12;

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal total
/// cost, where `cost(r)` is the per-row work estimate. Ranges are cut as
/// soon as the running cost reaches the per-part budget, so a single hot
/// row never drags its neighbours into the same worker.
fn balanced_ranges(n: usize, parts: usize, cost: impl Fn(usize) -> usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(n.max(1));
    let total: usize = (0..n).map(&cost).sum();
    let per = total / parts + 1;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for r in 0..n {
        acc += cost(r);
        if acc >= per && r + 1 < n && ranges.len() + 1 < parts {
            ranges.push((start, r + 1));
            start = r + 1;
            acc = 0;
        }
    }
    if start < n || ranges.is_empty() {
        ranges.push((start, n));
    }
    ranges
}

/// A bounded max-score collector: keeps the `k` highest-scoring items seen,
/// breaking score ties by ascending index for deterministic output.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    // Min-heap of the current best k (the root is the weakest kept item).
    heap: BinaryHeap<HeapItem>,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    score: f64,
    index: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering on score => BinaryHeap becomes a min-heap on
        // score. NaN scores are rejected at insertion.
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are finite")
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    /// A collector keeping the best `k` items.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one item; non-finite scores are ignored.
    pub fn push(&mut self, index: u32, score: f64) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapItem { score, index });
            return;
        }
        let weakest = self.heap.peek().expect("non-empty at capacity");
        let better = score > weakest.score || (score == weakest.score && index < weakest.index);
        if better {
            self.heap.pop();
            self.heap.push(HeapItem { score, index });
        }
    }

    /// Extracts the kept items, best first.
    pub fn into_sorted(self) -> Vec<Ranked> {
        let mut items: Vec<HeapItem> = self.heap.into_vec();
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.index.cmp(&b.index))
        });
        items
            .into_iter()
            .map(|h| Ranked {
                index: h.index,
                score: h.score,
            })
            .collect()
    }
}

/// Top-k normalized HeteSim for one source row over materialized halves.
///
/// Complexity is `O(Σ_{m ∈ supp(u)} nnz(right_t[m]) + |candidates| log k)`
/// — independent of the number of targets with zero meeting probability.
pub fn top_k_pruned(h: &Halves, source: u32, k: usize) -> Result<Vec<Ranked>> {
    let u = h.left.row(source as usize);
    if u.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let un = u.l2_norm();
    // Sparse accumulation of dot products into only the reachable targets.
    let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (m, w) in u.iter() {
        for (&t, &v) in h.right_t.row_indices(m).iter().zip(h.right_t.row_values(m)) {
            *acc.entry(t).or_insert(0.0) += w * v;
        }
    }
    let mut top = TopK::new(k);
    for (t, dot) in acc {
        let denom = un * h.right_norms[t as usize];
        if denom > 0.0 {
            top.push(t, dot / denom);
        }
    }
    Ok(top.into_sorted())
}

/// Top-k normalized HeteSim for one source row with the candidate scan
/// partitioned across `threads` workers.
///
/// Targets are split into contiguous ranges of near-equal right-half nnz;
/// each worker scores its targets into a private [`TopK`] and the heaps are
/// merged at the end. Per-target dot products accumulate contributions in
/// ascending middle-object order — the same order as the serial pruned
/// accumulation — so the output is bit-identical to [`top_k_pruned`] at
/// every thread count. Falls back to the serial path when `threads <= 1`
/// or the right half is too small to amortize workers.
pub fn top_k_parallel(h: &Halves, source: u32, k: usize, threads: usize) -> Result<Vec<Ranked>> {
    if threads <= 1 || h.right.nnz() < PARALLEL_MIN_RIGHT_NNZ {
        return top_k_pruned(h, source, k);
    }
    top_k_parallel_force(h, source, k, threads)
}

/// The parallel body of [`top_k_parallel`], with no size gate (tests call
/// it directly on small fixtures).
fn top_k_parallel_force(h: &Halves, source: u32, k: usize, threads: usize) -> Result<Vec<Ranked>> {
    let u = h.left.row(source as usize);
    if u.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let _span = hetesim_obs::span!(
        "core.topk.parallel",
        targets = h.right.nrows(),
        threads = threads,
    );
    let un = u.l2_norm();
    // Densify the source distribution for O(1) middle lookups. A stored
    // zero in `u` still marks its targets reachable (as the serial pruned
    // accumulation does), so membership is tracked separately.
    let dim = h.right.ncols();
    let mut du = vec![0.0f64; dim];
    let mut in_u = vec![false; dim];
    for (m, w) in u.iter() {
        du[m] = w;
        in_u[m] = true;
    }
    let nt = h.right.nrows();
    let ranges = balanced_ranges(nt, threads, |t| h.right.row_nnz(t));
    let (du, in_u) = (&du[..], &in_u[..]);
    let tops: Vec<TopK> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut top = TopK::new(k);
                    for t in lo..hi {
                        let idx = h.right.row_indices(t);
                        let vals = h.right.row_values(t);
                        let mut dot = 0.0f64;
                        let mut touched = false;
                        for (&m, &v) in idx.iter().zip(vals) {
                            if in_u[m as usize] {
                                // Same operand order as the serial pruned
                                // accumulation: u[m] * right[t][m], summed
                                // over ascending m.
                                dot += du[m as usize] * v;
                                touched = true;
                            }
                        }
                        if touched {
                            let denom = un * h.right_norms[t];
                            if denom > 0.0 {
                                top.push(t as u32, dot / denom);
                            }
                        }
                    }
                    top
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("top-k worker panicked"))
            .collect()
    });
    // The kept top-k set is unique under the (score desc, index asc) total
    // order, so merging per-worker heaps reproduces the serial result.
    let mut top = TopK::new(k);
    for t in tops {
        for r in t.into_sorted() {
            top.push(r.index, r.score);
        }
    }
    Ok(top.into_sorted())
}

/// One scored source–target pair from an all-pairs search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedPair {
    /// Source object index.
    pub source: u32,
    /// Target object index.
    pub target: u32,
    /// Normalized HeteSim score.
    pub score: f64,
}

/// The `k` highest-scoring `(source, target)` pairs over materialized
/// halves — the path-based analogue of the top-k similarity join the
/// related-work section cites. Pairs with zero meeting probability are
/// never materialized; ties break by `(source, target)` ascending.
pub fn top_k_pairs(h: &Halves, k: usize) -> Result<Vec<RankedPair>> {
    let mut best: Vec<RankedPair> = Vec::with_capacity(k + 1);
    if k == 0 {
        return Ok(best);
    }
    for source in 0..h.left.nrows() {
        score_source_pairs(h, source, k, &mut best);
    }
    Ok(best)
}

/// Inserts `candidate` into the sorted bounded list `best` (descending
/// score, ties ascending `(source, target)`), keeping at most `k` items.
fn insert_pair(best: &mut Vec<RankedPair>, k: usize, candidate: RankedPair) {
    let pos = best.partition_point(|b| {
        b.score > candidate.score
            || (b.score == candidate.score
                && (b.source, b.target) < (candidate.source, candidate.target))
    });
    if pos < k {
        best.insert(pos, candidate);
        best.truncate(k);
    }
}

/// Scores every reachable target of one source (pruned accumulation) and
/// offers the pairs to `best`.
fn score_source_pairs(h: &Halves, source: usize, k: usize, best: &mut Vec<RankedPair>) {
    let u = h.left.row(source);
    if u.is_empty() {
        return;
    }
    let un = u.l2_norm();
    let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (m, w) in u.iter() {
        for (&t, &v) in h.right_t.row_indices(m).iter().zip(h.right_t.row_values(m)) {
            *acc.entry(t).or_insert(0.0) += w * v;
        }
    }
    for (t, dot) in acc {
        let denom = un * h.right_norms[t as usize];
        if denom <= 0.0 {
            continue;
        }
        let score = dot / denom;
        if !score.is_finite() {
            continue;
        }
        insert_pair(
            best,
            k,
            RankedPair {
                source: source as u32,
                target: t,
                score,
            },
        );
    }
}

/// The `k` highest-scoring pairs with sources partitioned across `threads`
/// workers.
///
/// Sources are split into contiguous ranges of near-equal left-half nnz
/// (the per-source pruned-accumulation cost is proportional to the mass of
/// its distribution); each worker keeps its own bounded best-list and the
/// lists are merged with the same ordered insert. Every global top-k pair
/// necessarily survives its worker's local top-k, and the top-k set is
/// unique under the (score desc, pair asc) total order, so the result is
/// identical to [`top_k_pairs`] at every thread count. Falls back to the
/// serial path when `threads <= 1` or the left half is small.
pub fn top_k_pairs_parallel(h: &Halves, k: usize, threads: usize) -> Result<Vec<RankedPair>> {
    if threads <= 1 || h.left.nnz() < PARALLEL_MIN_LEFT_NNZ {
        return top_k_pairs(h, k);
    }
    top_k_pairs_parallel_force(h, k, threads)
}

/// The parallel body of [`top_k_pairs_parallel`], with no size gate.
fn top_k_pairs_parallel_force(h: &Halves, k: usize, threads: usize) -> Result<Vec<RankedPair>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let _span = hetesim_obs::span!(
        "core.topk.pairs_parallel",
        sources = h.left.nrows(),
        threads = threads,
    );
    let ns = h.left.nrows();
    let ranges = balanced_ranges(ns, threads, |s| h.left.row_nnz(s));
    let lists: Vec<Vec<RankedPair>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut best: Vec<RankedPair> = Vec::with_capacity(k + 1);
                    for source in lo..hi {
                        score_source_pairs(h, source, k, &mut best);
                    }
                    best
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("top-k worker panicked"))
            .collect()
    });
    let mut best: Vec<RankedPair> = Vec::with_capacity(k + 1);
    for list in lists {
        for candidate in list {
            insert_pair(&mut best, k, candidate);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_sorted() {
        let mut t = TopK::new(3);
        for (i, s) in [(0u32, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2)] {
            t.push(i, s);
        }
        let out = t.into_sorted();
        let idx: Vec<u32> = out.iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![1, 3, 2]);
        assert!(out[0].score >= out[1].score && out[1].score >= out[2].score);
    }

    #[test]
    fn ties_break_by_index() {
        let mut t = TopK::new(2);
        t.push(5, 0.5);
        t.push(1, 0.5);
        t.push(3, 0.5);
        let idx: Vec<u32> = t.into_sorted().iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        t.push(0, 1.0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn nan_scores_are_ignored() {
        let mut t = TopK::new(2);
        t.push(0, f64::NAN);
        t.push(1, 0.5);
        let out = t.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, 1);
    }

    #[test]
    fn fewer_items_than_k() {
        let mut t = TopK::new(10);
        t.push(0, 0.3);
        t.push(1, 0.6);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 1);
    }

    use hetesim_sparse::{CooMatrix, CsrMatrix};

    fn halves_from(left: CsrMatrix, right: CsrMatrix) -> Halves {
        let left_norms = left.row_l2_norms();
        let right_norms = right.row_l2_norms();
        let right_t = right.transpose();
        Halves {
            left,
            right,
            right_t,
            left_norms,
            right_norms,
        }
    }

    /// A skewed fixture: source 0 reaches most middles (hot row), several
    /// sources reach nothing (empty rows), targets have varied support.
    fn skewed_halves() -> Halves {
        let (sources, middles, targets) = (37usize, 23usize, 41usize);
        let mut left = CooMatrix::new(sources, middles);
        for m in 0..middles {
            left.push(0, m, 1.0 + (m % 5) as f64 * 0.25);
        }
        let mut x = 7usize;
        for s in 1..sources {
            if s % 4 == 0 {
                continue; // empty source rows
            }
            for _ in 0..2 {
                x = (x * 1103515245 + 12345) % 2147483648;
                left.push(s, x % middles, ((x % 9) + 1) as f64 * 0.5);
            }
        }
        let mut right = CooMatrix::new(targets, middles);
        for m in 0..middles {
            right.push(3, m, 0.75); // hot target
        }
        for t in 0..targets {
            if t % 5 == 1 {
                continue; // unreachable targets
            }
            for _ in 0..3 {
                x = (x * 1103515245 + 12345) % 2147483648;
                right.push(t, x % middles, ((x % 7) + 1) as f64 * 0.3);
            }
        }
        halves_from(left.to_csr(), right.to_csr())
    }

    #[test]
    fn parallel_top_k_matches_pruned_bitwise() {
        let h = skewed_halves();
        for source in 0..h.left.nrows() as u32 {
            for k in [1usize, 3, 10, 1000] {
                let serial = top_k_pruned(&h, source, k).unwrap();
                for threads in [2usize, 4, 7, 64] {
                    let par = top_k_parallel_force(&h, source, k, threads).unwrap();
                    assert_eq!(par, serial, "source={source} k={k} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_top_k_gates_to_serial_below_threshold() {
        let h = skewed_halves();
        assert!(h.right.nnz() < super::PARALLEL_MIN_RIGHT_NNZ);
        let gated = top_k_parallel(&h, 0, 5, 8).unwrap();
        assert_eq!(gated, top_k_pruned(&h, 0, 5).unwrap());
    }

    #[test]
    fn parallel_pairs_match_serial_bitwise() {
        let h = skewed_halves();
        for k in [1usize, 4, 17, 10_000] {
            let serial = top_k_pairs(&h, k).unwrap();
            for threads in [2usize, 4, 7, 64] {
                let par = top_k_pairs_parallel_force(&h, k, threads).unwrap();
                assert_eq!(par, serial, "k={k} threads={threads}");
            }
        }
        assert!(top_k_pairs_parallel_force(&h, 0, 4).unwrap().is_empty());
    }

    #[test]
    fn balanced_ranges_cover_and_isolate_hot_rows() {
        // One hot row (cost 100) among unit-cost rows: the hot row should
        // not share a range with the entire tail.
        let cost = |r: usize| if r == 2 { 100 } else { 1 };
        let ranges = balanced_ranges(10, 4, cost);
        assert!(ranges.len() <= 4);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 10);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // The range containing row 2 ends right after it.
        let hot = ranges.iter().find(|&&(lo, hi)| lo <= 2 && 2 < hi).unwrap();
        assert_eq!(hot.1, 3);
        // Degenerate inputs.
        assert_eq!(balanced_ranges(0, 4, |_| 1), vec![(0, 0)]);
        assert_eq!(balanced_ranges(5, 1, |_| 1), vec![(0, 5)]);
        assert_eq!(balanced_ranges(3, 64, |_| 0).last().unwrap().1, 3);
    }
}
