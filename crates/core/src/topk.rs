//! Pruned top-k relevance search (Section 4.6, optimization 3).
//!
//! "The related objects to a searched object are a very small percentage of
//! all objects in the target type" — so instead of scoring every target, we
//! walk only the middle objects the source actually reaches and accumulate
//! meeting mass into the targets that share them. Targets never touched are
//! provably zero and are skipped entirely.

use crate::cache::Halves;
use crate::{Ranked, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A bounded max-score collector: keeps the `k` highest-scoring items seen,
/// breaking score ties by ascending index for deterministic output.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    // Min-heap of the current best k (the root is the weakest kept item).
    heap: BinaryHeap<HeapItem>,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    score: f64,
    index: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering on score => BinaryHeap becomes a min-heap on
        // score. NaN scores are rejected at insertion.
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are finite")
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    /// A collector keeping the best `k` items.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one item; non-finite scores are ignored.
    pub fn push(&mut self, index: u32, score: f64) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapItem { score, index });
            return;
        }
        let weakest = self.heap.peek().expect("non-empty at capacity");
        let better = score > weakest.score || (score == weakest.score && index < weakest.index);
        if better {
            self.heap.pop();
            self.heap.push(HeapItem { score, index });
        }
    }

    /// Extracts the kept items, best first.
    pub fn into_sorted(self) -> Vec<Ranked> {
        let mut items: Vec<HeapItem> = self.heap.into_vec();
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.index.cmp(&b.index))
        });
        items
            .into_iter()
            .map(|h| Ranked {
                index: h.index,
                score: h.score,
            })
            .collect()
    }
}

/// Top-k normalized HeteSim for one source row over materialized halves.
///
/// Complexity is `O(Σ_{m ∈ supp(u)} nnz(right_t[m]) + |candidates| log k)`
/// — independent of the number of targets with zero meeting probability.
pub fn top_k_pruned(h: &Halves, source: u32, k: usize) -> Result<Vec<Ranked>> {
    let u = h.left.row(source as usize);
    if u.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let un = u.l2_norm();
    // Sparse accumulation of dot products into only the reachable targets.
    let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (m, w) in u.iter() {
        for (&t, &v) in h.right_t.row_indices(m).iter().zip(h.right_t.row_values(m)) {
            *acc.entry(t).or_insert(0.0) += w * v;
        }
    }
    let mut top = TopK::new(k);
    for (t, dot) in acc {
        let denom = un * h.right_norms[t as usize];
        if denom > 0.0 {
            top.push(t, dot / denom);
        }
    }
    Ok(top.into_sorted())
}

/// One scored source–target pair from an all-pairs search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedPair {
    /// Source object index.
    pub source: u32,
    /// Target object index.
    pub target: u32,
    /// Normalized HeteSim score.
    pub score: f64,
}

/// The `k` highest-scoring `(source, target)` pairs over materialized
/// halves — the path-based analogue of the top-k similarity join the
/// related-work section cites. Pairs with zero meeting probability are
/// never materialized; ties break by `(source, target)` ascending.
pub fn top_k_pairs(h: &Halves, k: usize) -> Result<Vec<RankedPair>> {
    let mut best: Vec<RankedPair> = Vec::with_capacity(k + 1);
    if k == 0 {
        return Ok(best);
    }
    for source in 0..h.left.nrows() {
        let u = h.left.row(source);
        if u.is_empty() {
            continue;
        }
        let un = u.l2_norm();
        let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for (m, w) in u.iter() {
            for (&t, &v) in h.right_t.row_indices(m).iter().zip(h.right_t.row_values(m)) {
                *acc.entry(t).or_insert(0.0) += w * v;
            }
        }
        for (t, dot) in acc {
            let denom = un * h.right_norms[t as usize];
            if denom <= 0.0 {
                continue;
            }
            let score = dot / denom;
            if !score.is_finite() {
                continue;
            }
            let candidate = RankedPair {
                source: source as u32,
                target: t,
                score,
            };
            let pos = best.partition_point(|b| {
                b.score > candidate.score
                    || (b.score == candidate.score
                        && (b.source, b.target) < (candidate.source, candidate.target))
            });
            if pos < k {
                best.insert(pos, candidate);
                best.truncate(k);
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_sorted() {
        let mut t = TopK::new(3);
        for (i, s) in [(0u32, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2)] {
            t.push(i, s);
        }
        let out = t.into_sorted();
        let idx: Vec<u32> = out.iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![1, 3, 2]);
        assert!(out[0].score >= out[1].score && out[1].score >= out[2].score);
    }

    #[test]
    fn ties_break_by_index() {
        let mut t = TopK::new(2);
        t.push(5, 0.5);
        t.push(1, 0.5);
        t.push(3, 0.5);
        let idx: Vec<u32> = t.into_sorted().iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        t.push(0, 1.0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn nan_scores_are_ignored() {
        let mut t = TopK::new(2);
        t.push(0, f64::NAN);
        t.push(1, 0.5);
        let out = t.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, 1);
    }

    #[test]
    fn fewer_items_than_k() {
        let mut t = TopK::new(10);
        t.push(0, 0.3);
        t.push(1, 0.6);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 1);
    }
}
