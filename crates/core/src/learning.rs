//! Supervised relevance-path selection (Section 5.1, option 3).
//!
//! "Supervised learning can be used to automatically select relevance
//! paths: we can label a small portion of similar objects, and then train
//! the relevance paths and their weights." This module implements that
//! option: given candidate paths (e.g. from
//! `hetesim_graph::enumerate::enumerate_paths`) and labeled object pairs,
//! it fits non-negative per-path weights by projected gradient descent on
//! a ridge-regularized least-squares objective, so the combined measure
//! `score(a, b) = Σ_j w_j · HeteSim(a, b | P_j)` matches the labels.

use crate::{CoreError, HeteSimEngine, Result};
use hetesim_graph::{GraphError, MetaPath};

/// One labeled training pair: `(source, target)` indices in the shared
/// source/target types of the candidate paths, and a relevance label
/// (typically 1.0 for related, 0.0 for unrelated).
#[derive(Debug, Clone, Copy)]
pub struct LabeledPair {
    /// Source object index.
    pub source: u32,
    /// Target object index.
    pub target: u32,
    /// Desired relevance.
    pub label: f64,
}

/// Hyperparameters for [`learn_path_weights`].
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Gradient step size.
    pub learning_rate: f64,
    /// Gradient iterations.
    pub iterations: usize,
    /// Ridge (L2) regularization strength.
    pub l2: f64,
    /// Project weights onto the non-negative orthant after each step
    /// (weights are path importances; negative values are not meaningful).
    pub nonnegative: bool,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            learning_rate: 0.5,
            iterations: 2000,
            l2: 1e-4,
            nonnegative: true,
        }
    }
}

/// The fitted combination of candidate paths.
#[derive(Debug, Clone)]
pub struct LearnedPathWeights {
    /// The candidate paths, in input order.
    pub paths: Vec<MetaPath>,
    /// One non-negative weight per path.
    pub weights: Vec<f64>,
    /// Final mean squared training error.
    pub training_loss: f64,
}

impl LearnedPathWeights {
    /// Scores a pair with the learned combination.
    pub fn score(&self, engine: &HeteSimEngine<'_>, a: u32, b: u32) -> Result<f64> {
        let mut s = 0.0;
        for (path, &w) in self.paths.iter().zip(&self.weights) {
            if w != 0.0 {
                s += w * engine.pair(path, a, b)?;
            }
        }
        Ok(s)
    }

    /// Path indices ranked by descending weight.
    pub fn ranked_paths(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&i, &j| {
            self.weights[j]
                .partial_cmp(&self.weights[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

/// Fits per-path weights from labeled pairs.
///
/// All candidate paths must share source and target types (otherwise the
/// pairs are not comparable across paths); violating candidates produce
/// [`GraphError::InvalidPath`].
pub fn learn_path_weights(
    engine: &HeteSimEngine<'_>,
    paths: &[MetaPath],
    examples: &[LabeledPair],
    cfg: LearnConfig,
) -> Result<LearnedPathWeights> {
    if paths.is_empty() {
        return Err(CoreError::Graph(GraphError::InvalidPath(
            "need at least one candidate path".into(),
        )));
    }
    if examples.is_empty() {
        return Err(CoreError::Graph(GraphError::InvalidPath(
            "need at least one labeled pair".into(),
        )));
    }
    let src = paths[0].source_type();
    let dst = paths[0].target_type();
    for p in paths {
        if p.source_type() != src || p.target_type() != dst {
            return Err(CoreError::Graph(GraphError::InvalidPath(
                "all candidate paths must share source and target types".into(),
            )));
        }
    }

    // Feature matrix: X[i][j] = HeteSim(pair_i | path_j).
    let n = examples.len();
    let k = paths.len();
    let mut x = vec![vec![0.0f64; k]; n];
    for (i, ex) in examples.iter().enumerate() {
        for (j, p) in paths.iter().enumerate() {
            x[i][j] = engine.pair(p, ex.source, ex.target)?;
        }
    }
    let y: Vec<f64> = examples.iter().map(|e| e.label).collect();

    // Projected gradient descent on (1/n)‖Xw − y‖² + l2‖w‖².
    let mut w = vec![1.0 / k as f64; k];
    let mut loss = f64::INFINITY;
    for _ in 0..cfg.iterations {
        let mut grad = vec![0.0f64; k];
        let mut sse = 0.0;
        for i in 0..n {
            let pred: f64 = x[i].iter().zip(&w).map(|(&a, &b)| a * b).sum();
            let err = pred - y[i];
            sse += err * err;
            for j in 0..k {
                grad[j] += 2.0 * err * x[i][j];
            }
        }
        loss = sse / n as f64;
        for j in 0..k {
            let g = grad[j] / n as f64 + 2.0 * cfg.l2 * w[j];
            w[j] -= cfg.learning_rate * g;
            if cfg.nonnegative && w[j] < 0.0 {
                w[j] = 0.0;
            }
        }
    }
    Ok(LearnedPathWeights {
        paths: paths.to_vec(),
        weights: w,
        training_loss: loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{Hin, HinBuilder, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        let pairs = [
            ("Tom", "P1"),
            ("Tom", "P2"),
            ("Mary", "P2"),
            ("Mary", "P3"),
            ("Bob", "P3"),
            ("Bob", "P4"),
            ("Eve", "P4"),
            ("Eve", "P5"),
        ];
        for (x, y) in pairs {
            b.add_edge_by_name(w, x, y, 1.0).unwrap();
        }
        for (x, y) in [
            ("P1", "KDD"),
            ("P2", "KDD"),
            ("P3", "SIGMOD"),
            ("P4", "SIGMOD"),
            ("P5", "VLDB"),
        ] {
            b.add_edge_by_name(pb, x, y, 1.0).unwrap();
        }
        b.build()
    }

    #[test]
    fn recovers_the_generating_path() {
        let hin = toy();
        let engine = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let apapc = MetaPath::parse(hin.schema(), "APAPC").unwrap();
        // Labels generated from APC alone.
        let mut examples = Vec::new();
        for a in 0..4u32 {
            for c in 0..3u32 {
                examples.push(LabeledPair {
                    source: a,
                    target: c,
                    label: engine.pair(&apc, a, c).unwrap(),
                });
            }
        }
        let fit = learn_path_weights(
            &engine,
            &[apc.clone(), apapc],
            &examples,
            LearnConfig::default(),
        )
        .unwrap();
        assert!(
            fit.weights[0] > 3.0 * fit.weights[1].max(1e-6),
            "APC should dominate: {:?}",
            fit.weights
        );
        assert!(fit.training_loss < 1e-3, "loss {}", fit.training_loss);
        assert_eq!(fit.ranked_paths()[0], 0);
        // The learned combination reproduces the labels.
        for ex in &examples {
            let s = fit.score(&engine, ex.source, ex.target).unwrap();
            assert!((s - ex.label).abs() < 0.1);
        }
    }

    #[test]
    fn weights_stay_nonnegative() {
        let hin = toy();
        let engine = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let apapc = MetaPath::parse(hin.schema(), "APAPC").unwrap();
        // Adversarial labels: anti-correlated with both features.
        let examples: Vec<LabeledPair> = (0..4u32)
            .flat_map(|a| {
                (0..3u32).map(move |c| LabeledPair {
                    source: a,
                    target: c,
                    label: -1.0,
                })
            })
            .collect();
        let fit =
            learn_path_weights(&engine, &[apc, apapc], &examples, LearnConfig::default()).unwrap();
        assert!(fit.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn rejects_mismatched_candidates() {
        let hin = toy();
        let engine = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let apa = MetaPath::parse(hin.schema(), "APA").unwrap();
        let examples = [LabeledPair {
            source: 0,
            target: 0,
            label: 1.0,
        }];
        assert!(learn_path_weights(
            &engine,
            &[apc.clone(), apa],
            &examples,
            LearnConfig::default()
        )
        .is_err());
        assert!(learn_path_weights(&engine, &[], &examples, LearnConfig::default()).is_err());
        assert!(learn_path_weights(&engine, &[apc], &[], LearnConfig::default()).is_err());
    }
}
