use hetesim_graph::GraphError;
use hetesim_sparse::SparseError;
use std::fmt;

/// Errors produced by HeteSim queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated network/schema/path error.
    Graph(GraphError),
    /// Propagated linear-algebra error.
    Sparse(SparseError),
    /// A query endpoint index is outside its type's registry.
    NodeOutOfRange {
        /// Which endpoint ("source" or "target").
        endpoint: &'static str,
        /// The offending index.
        index: u32,
        /// Number of nodes of the endpoint's type.
        count: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "{e}"),
            CoreError::Sparse(e) => write!(f, "{e}"),
            CoreError::NodeOutOfRange {
                endpoint,
                index,
                count,
            } => write!(
                f,
                "{endpoint} node #{index} out of range (type has {count} nodes)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Sparse(e) => Some(e),
            CoreError::NodeOutOfRange { .. } => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SparseError> for CoreError {
    fn from(e: SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let g: CoreError = GraphError::NotConcatenable.into();
        assert!(matches!(g, CoreError::Graph(_)));
        let s: CoreError = SparseError::EmptyChain.into();
        assert!(matches!(s, CoreError::Sparse(_)));
        let n = CoreError::NodeOutOfRange {
            endpoint: "source",
            index: 9,
            count: 3,
        };
        assert!(n.to_string().contains("source"));
        assert!(n.to_string().contains('9'));
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e: CoreError = SparseError::EmptyChain.into();
        assert!(e.source().is_some());
    }
}
