use crate::cache::{CacheStats, Halves, PathCache};
use crate::decompose::{decompose, edge_split};
use crate::reachable::{normalize_chain, propagate};
use crate::{CoreError, Result};
use hetesim_graph::{Direction, Hin, MetaPath, Step};
use hetesim_sparse::{parallel, CooMatrix, CsrMatrix, SparseVec};
use std::sync::Arc;

/// Cache key of a step sequence (same format as `MetaPath::cache_key`,
/// but computable for arbitrary sub-slices).
fn steps_key(steps: &[Step]) -> String {
    let mut s = String::new();
    for step in steps {
        s.push(match step.dir {
            Direction::Forward => '+',
            Direction::Backward => '-',
        });
        s.push_str(&step.rel.index().to_string());
    }
    s
}

/// The HeteSim query engine.
///
/// Borrows a network immutably and memoizes the materialized half-path
/// products per relevance path, so the expensive matrix chain is paid once
/// per path and every subsequent query — full matrix, pair, single-source
/// row, top-k — reuses it (the Section 4.6 off-line/on-line split).
///
/// All scores are the *normalized* HeteSim of Definition 10 (cosine form)
/// unless the method name says `unnormalized`, which yields the raw
/// pairwise meeting probability of Definition 3 / Equation 6.
#[derive(Debug)]
pub struct HeteSimEngine<'a> {
    hin: &'a Hin,
    cache: PathCache,
    threads: usize,
    reuse_prefixes: bool,
}

impl<'a> HeteSimEngine<'a> {
    /// Creates an engine with the default worker-thread count:
    /// `HETESIM_THREADS` if set, otherwise the machine's available
    /// parallelism (see [`parallel::default_threads`]). Results are
    /// bit-identical at every thread count; use
    /// [`HeteSimEngine::with_threads`] with `threads = 1` for an
    /// explicitly serial engine.
    pub fn new(hin: &'a Hin) -> Self {
        Self::with_threads(hin, parallel::default_threads())
    }

    /// Creates an engine that runs large multiplications and query stages
    /// with the given number of worker threads. `threads = 1` is the
    /// explicit serial path; `threads = 0` means "auto" (same default as
    /// [`HeteSimEngine::new`]).
    pub fn with_threads(hin: &'a Hin, threads: usize) -> Self {
        HeteSimEngine {
            hin,
            cache: PathCache::new(),
            threads: if threads == 0 {
                parallel::default_threads()
            } else {
                threads
            },
            reuse_prefixes: false,
        }
    }

    /// Enables prefix-product reuse (Section 4.6, optimization 2): the
    /// transition products of step prefixes are materialized once and
    /// shared across concatenable paths (`C-P-A` serves `C-P-A-P-A`,
    /// `C-P-A-P-C`, …). Trades the chain-order optimization for reuse —
    /// worthwhile when many related paths are queried against one network.
    pub fn reuse_prefixes(mut self, on: bool) -> Self {
        self.reuse_prefixes = on;
        self
    }

    /// Caps the path cache at approximately `budget_bytes` resident bytes
    /// (`0` = unlimited, the default). Once the cap is reached, the least
    /// recently used half-path or prefix products are evicted; re-querying
    /// an evicted path transparently rebuilds it. This is what makes
    /// long-running servers safe on bounded memory — see
    /// [`PathCache`] for the eviction policy.
    pub fn with_cache_budget(self, budget_bytes: u64) -> Self {
        self.cache.set_budget_bytes(budget_bytes);
        self
    }

    /// Number of materialized prefix products currently cached.
    pub fn prefix_cache_len(&self) -> usize {
        self.cache.partial_len()
    }

    /// Pre-materializes the half-path products of `path` so later queries
    /// along it are pure cache hits (the paper's Section 4.6 "compute
    /// frequently-used relevance paths off-line" step). Idempotent: warming
    /// an already-cached path is a no-op cache hit.
    pub fn warm(&self, path: &MetaPath) -> Result<()> {
        self.halves(path).map(|_| ())
    }

    /// Materializes (or fetches) the half-path products of `path` and
    /// hands back the shared artifacts. This is the snapshot writer's
    /// entry point: [`crate::snapshot::write_snapshot`] serializes the
    /// `left`/`right` halves it returns.
    pub fn materialized_halves(&self, path: &MetaPath) -> Result<Arc<Halves>> {
        self.halves(path)
    }

    /// Installs externally produced half-products for `path` — the
    /// snapshot *load* path. Only the raw halves come from outside; the
    /// derived structures (transpose, row norms) are recomputed here by
    /// the same deterministic code [`HeteSimEngine::warm`] runs, so an
    /// engine restored from a snapshot is bitwise-identical to one that
    /// built the products itself. The halves are validated (finite
    /// values, matching middle dimension) before they are cached.
    pub fn install_halves(&self, path: &MetaPath, left: CsrMatrix, right: CsrMatrix) -> Result<()> {
        left.check_finite("hetesim left half")?;
        right.check_finite("hetesim right half")?;
        if left.ncols() != right.ncols() {
            return Err(CoreError::Sparse(
                hetesim_sparse::SparseError::DimensionMismatch {
                    op: "install_halves",
                    left: left.shape(),
                    right: right.shape(),
                },
            ));
        }
        let (left_norms, right_norms, right_t) =
            (left.row_l2_norms(), right.row_l2_norms(), right.transpose());
        self.cache.insert(
            &path.cache_key(),
            Arc::new(Halves {
                left,
                right,
                right_t,
                left_norms,
                right_norms,
            }),
        );
        Ok(())
    }

    /// Materialized product of the row-stochastic transitions of a step
    /// sequence, reusing the longest cached prefix.
    fn prefix_product(&self, steps: &[Step]) -> Result<Arc<CsrMatrix>> {
        debug_assert!(!steps.is_empty());
        let key = steps_key(steps);
        self.cache.get_or_build_partial(&key, || {
            let last = self.hin.step_transition(steps[steps.len() - 1]);
            if steps.len() == 1 {
                Ok::<_, CoreError>(last)
            } else {
                let prefix = self.prefix_product(&steps[..steps.len() - 1])?;
                Ok(parallel::matmul_parallel(&prefix, &last, self.threads)?)
            }
        })
    }

    /// The underlying network.
    pub fn hin(&self) -> &'a Hin {
        self.hin
    }

    /// Counters and residency of the half-path cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Configured cache budget in bytes (`0` = unlimited).
    pub fn cache_budget_bytes(&self) -> u64 {
        self.cache.budget_bytes()
    }

    /// `(hits, misses)` of the half-path cache.
    #[deprecated(
        since = "0.1.0",
        note = "use `cache_stats`, which also reports entries and bytes"
    )]
    pub fn cache_stats_tuple(&self) -> (u64, u64) {
        let s = self.cache.stats();
        (s.hits, s.misses)
    }

    /// Drops all memoized half-path products.
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Chain product of *raw* adjacency matrices with row normalization
    /// fused into the multiplications: each factor's row-sum divisors are
    /// applied while its values stream through the SpGEMM numeric phase,
    /// so the row-stochastic chain is never materialized. Bit-identical to
    /// normalize-then-multiply at every thread count (the fused kernels
    /// divide each value exactly once by the divisor `row_normalized`
    /// would have used, and the association order comes from the planner,
    /// which only looks at shapes and nnz — both normalization-invariant).
    fn chain_product_fused(&self, mats: &[CsrMatrix], divisors: &[Vec<f64>]) -> Result<CsrMatrix> {
        let refs: Vec<&CsrMatrix> = mats.iter().collect();
        let divs: Vec<&[f64]> = divisors.iter().map(|d| d.as_slice()).collect();
        Ok(hetesim_sparse::chain::multiply_chain_fused_threaded(
            &refs,
            &divs,
            self.threads,
        )?)
    }

    /// Builds the two half-products through the prefix cache
    /// (`reuse_prefixes` mode): pure-step prefixes are shared across
    /// paths; odd paths append the edge-object split as a final factor.
    fn build_halves_prefix(&self, path: &MetaPath) -> Result<(CsrMatrix, CsrMatrix)> {
        let steps = path.steps();
        let l = steps.len();
        if l % 2 == 0 {
            let mid = l / 2;
            let left = (*self.prefix_product(&steps[..mid])?).clone();
            let rsteps: Vec<Step> = steps[mid..].iter().rev().map(|s| s.reversed()).collect();
            let right = (*self.prefix_product(&rsteps)?).clone();
            Ok((left, right))
        } else {
            let ms = l / 2;
            let (ae, eb) = edge_split(self.hin.step_adjacency(steps[ms]));
            // When a prefix product consumes the split factor, its row
            // normalization is fused into that multiplication (the divisors
            // scale the right operand's values in-flight — bit-identical to
            // multiplying the materialized row_normalized factor). Only a
            // split factor that *is* the returned half is materialized.
            let left = if ms == 0 {
                ae.row_normalized_threaded(self.threads)
            } else {
                let prefix = self.prefix_product(&steps[..ms])?;
                parallel::matmul_parallel_fused(
                    &prefix,
                    &ae,
                    None,
                    Some(&ae.row_sum_divisors()),
                    self.threads,
                )?
            };
            let eb_t = eb.transpose();
            let right = if ms + 1 == l {
                eb_t.row_normalized_threaded(self.threads)
            } else {
                let rsteps: Vec<Step> =
                    steps[ms + 1..].iter().rev().map(|s| s.reversed()).collect();
                let prefix = self.prefix_product(&rsteps)?;
                parallel::matmul_parallel_fused(
                    &prefix,
                    &eb_t,
                    None,
                    Some(&eb_t.row_sum_divisors()),
                    self.threads,
                )?
            };
            Ok((left, right))
        }
    }

    /// Materializes (or fetches) the half-path products of a path.
    pub(crate) fn halves(&self, path: &MetaPath) -> Result<Arc<Halves>> {
        let key = path.cache_key();
        self.cache.get_or_build(&key, || {
            let _span = hetesim_obs::span!(
                "core.engine.build_halves",
                steps = path.steps().len(),
                odd = (path.steps().len() % 2) as u64,
            );
            let (left, right) = if self.reuse_prefixes {
                let _stage = hetesim_obs::span("core.engine.chain");
                self.build_halves_prefix(path)?
            } else {
                let (ml, dl, mr, dr) = {
                    // Normalize stage: splitting the path into half chains
                    // and computing each factor's row-sum divisors. The
                    // O(nnz) divisions themselves happen inside the chain
                    // products (fused normalization) — only the O(nrows)
                    // divisor vectors are materialized here.
                    let _stage = hetesim_obs::span("core.engine.normalize");
                    let d = decompose(self.hin, path)?;
                    let dl: Vec<Vec<f64>> = d.left.iter().map(|m| m.row_sum_divisors()).collect();
                    let dr: Vec<Vec<f64>> =
                        d.right_rev.iter().map(|m| m.row_sum_divisors()).collect();
                    (d.left, dl, d.right_rev, dr)
                };
                let _stage = hetesim_obs::span("core.engine.chain");
                (
                    self.chain_product_fused(&ml, &dl)?,
                    self.chain_product_fused(&mr, &dr)?,
                )
            };
            // The cosine stage: everything needed to turn raw half
            // products into normalized scores (norms + transposed right
            // half + finiteness validation of both operands).
            let (left_norms, right_norms, right_t) = {
                let _stage = hetesim_obs::span("core.engine.cosine");
                left.check_finite("hetesim left half")?;
                right.check_finite("hetesim right half")?;
                (left.row_l2_norms(), right.row_l2_norms(), right.transpose())
            };
            Ok::<_, CoreError>(Halves {
                left,
                right,
                right_t,
                left_norms,
                right_norms,
            })
        })
    }

    fn check_source(&self, path: &MetaPath, a: u32) -> Result<()> {
        let n = self.hin.node_count(path.source_type());
        if (a as usize) < n {
            Ok(())
        } else {
            Err(CoreError::NodeOutOfRange {
                endpoint: "source",
                index: a,
                count: n,
            })
        }
    }

    fn check_target(&self, path: &MetaPath, b: u32) -> Result<()> {
        let n = self.hin.node_count(path.target_type());
        if (b as usize) < n {
            Ok(())
        } else {
            Err(CoreError::NodeOutOfRange {
                endpoint: "target",
                index: b,
                count: n,
            })
        }
    }

    /// Unnormalized relevance matrix `PM_PL · PM_PR⁻¹ᵀ` (Equation 6): entry
    /// `(a, b)` is the probability the two walkers meet.
    pub fn matrix_unnormalized(&self, path: &MetaPath) -> Result<CsrMatrix> {
        let _span = hetesim_obs::span("core.engine.matrix_unnormalized");
        let h = self.halves(path)?;
        Ok(parallel::matmul_parallel(
            &h.left,
            &h.right_t,
            self.threads,
        )?)
    }

    /// Normalized relevance matrix (Definition 10): the cosine form, every
    /// entry in `[0, 1]`.
    pub fn matrix(&self, path: &MetaPath) -> Result<CsrMatrix> {
        let _span = hetesim_obs::span("core.engine.matrix");
        let h = self.halves(path)?;
        let raw = parallel::matmul_parallel(&h.left, &h.right_t, self.threads)?;
        // Scale entry (a, b) by 1 / (||left_a|| * ||right_b||). Any stored
        // entry has both norms > 0, since the product entry requires
        // overlapping support.
        let mut coo = CooMatrix::with_capacity(raw.nrows(), raw.ncols(), raw.nnz());
        for (a, b, v) in raw.iter() {
            let denom = h.left_norms[a] * h.right_norms[b];
            debug_assert!(denom > 0.0);
            coo.push(a, b, v / denom);
        }
        Ok(coo.to_csr())
    }

    /// Normalized HeteSim of one pair.
    pub fn pair(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        self.check_source(path, a)?;
        self.check_target(path, b)?;
        let h = self.halves(path)?;
        Ok(h.left.row(a as usize).cosine(&h.right.row(b as usize)))
    }

    /// Unnormalized HeteSim (meeting probability) of one pair.
    pub fn pair_unnormalized(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        self.check_source(path, a)?;
        self.check_target(path, b)?;
        let h = self.halves(path)?;
        Ok(h.left.row(a as usize).dot(&h.right.row(b as usize)))
    }

    /// Normalized HeteSim of one pair computed *online*: both walkers'
    /// distributions are propagated as sparse vectors without materializing
    /// the half-path matrices. Cheaper for one-off queries on paths that
    /// will not be reused; the ablation benches compare the two modes.
    pub fn pair_online(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        let _span = hetesim_obs::span("core.engine.pair_online");
        self.check_source(path, a)?;
        self.check_target(path, b)?;
        let d = decompose(self.hin, path)?;
        let left = normalize_chain(d.left);
        let right = normalize_chain(d.right_rev);
        let la = propagate(
            SparseVec::unit(self.hin.node_count(path.source_type()), a as usize),
            &left,
        )?;
        let rb = propagate(
            SparseVec::unit(self.hin.node_count(path.target_type()), b as usize),
            &right,
        )?;
        Ok(la.cosine(&rb))
    }

    /// Approximate normalized HeteSim of one pair: both walkers propagate
    /// online and their distributions are truncated to the `keep`
    /// largest-mass objects after every step (Section 4.6, optimization 3:
    /// "approximate algorithms … fasten the search with a small loss of
    /// accuracy"). With `keep >=` the widest distribution encountered this
    /// is exact; smaller `keep` trades accuracy for bounded per-step work.
    pub fn pair_truncated(&self, path: &MetaPath, a: u32, b: u32, keep: usize) -> Result<f64> {
        let _span = hetesim_obs::span!("core.engine.pair_truncated", keep = keep);
        self.check_source(path, a)?;
        self.check_target(path, b)?;
        let d = decompose(self.hin, path)?;
        let left = normalize_chain(d.left);
        let right = normalize_chain(d.right_rev);
        let mut la = SparseVec::unit(self.hin.node_count(path.source_type()), a as usize);
        for m in &left {
            la = m.vecmat(&la)?.truncated_top(keep);
        }
        let mut rb = SparseVec::unit(self.hin.node_count(path.target_type()), b as usize);
        for m in &right {
            rb = m.vecmat(&rb)?.truncated_top(keep);
        }
        Ok(la.cosine(&rb))
    }

    /// Normalized relevance of one source against *all* targets, as a dense
    /// row (zeros where the walkers cannot meet).
    pub fn single_source(&self, path: &MetaPath, a: u32) -> Result<Vec<f64>> {
        let _span = hetesim_obs::span("core.engine.single_source");
        self.check_source(path, a)?;
        let h = self.halves(path)?;
        let u = h.left.row(a as usize);
        let nt = h.right.nrows();
        if u.is_empty() {
            return Ok(vec![0.0; nt]);
        }
        let un = u.l2_norm();
        let dots = h.right.matvec(&u.to_dense())?;
        Ok(dots
            .iter()
            .enumerate()
            .map(|(t, &d)| {
                let denom = un * h.right_norms[t];
                if denom == 0.0 {
                    0.0
                } else {
                    d / denom
                }
            })
            .collect())
    }

    /// Top-`k` targets for one source, using pruned search (Section 4.6,
    /// optimization 3): only targets sharing at least one middle object
    /// with the source are ever scored.
    pub fn top_k(&self, path: &MetaPath, a: u32, k: usize) -> Result<Vec<crate::Ranked>> {
        let _span = hetesim_obs::span!("core.engine.top_k", k = k);
        self.check_source(path, a)?;
        let h = self.halves(path)?;
        let _stage = hetesim_obs::span("core.engine.topk");
        crate::topk::top_k_parallel(&h, a, k, self.threads)
    }

    /// The `k` most relevant `(source, target)` pairs across the whole
    /// relevance matrix — the path-based analogue of a top-k similarity
    /// join.
    pub fn top_k_pairs(&self, path: &MetaPath, k: usize) -> Result<Vec<crate::topk::RankedPair>> {
        let _span = hetesim_obs::span!("core.engine.top_k_pairs", k = k);
        let h = self.halves(path)?;
        crate::topk::top_k_pairs_parallel(&h, k, self.threads)
    }

    /// Decomposes one pair's score over the middle objects the two walkers
    /// meet at (provenance: "related *through what*"). Contributions sum
    /// to the normalized HeteSim score; at most `k` largest are returned.
    pub fn explain(
        &self,
        path: &MetaPath,
        a: u32,
        b: u32,
        k: usize,
    ) -> Result<crate::explain::Explanation> {
        self.check_source(path, a)?;
        self.check_target(path, b)?;
        let h = self.halves(path)?;
        let la = h.left.row(a as usize);
        let rb = h.right.row(b as usize);
        let denom = la.l2_norm() * rb.l2_norm();
        let mut meetings = Vec::new();
        let mut score = 0.0;
        if denom > 0.0 {
            let (mut i, mut j) = (0usize, 0usize);
            let (li, lv) = (la.indices(), la.values());
            let (ri, rv) = (rb.indices(), rb.values());
            while i < li.len() && j < ri.len() {
                match li[i].cmp(&ri[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let contribution = lv[i] * rv[j] / denom;
                        score += contribution;
                        meetings.push(crate::explain::Meeting {
                            middle: li[i],
                            contribution,
                        });
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        meetings.sort_by(|x, y| {
            y.contribution
                .partial_cmp(&x.contribution)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.middle.cmp(&y.middle))
        });
        meetings.truncate(k);
        Ok(crate::explain::Explanation {
            middle: crate::explain::middle_kind(path),
            meetings,
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};

    /// Figure 4-style toy network.
    fn fig4() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(w, "Bob", "P4", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P4", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    fn ids(hin: &Hin) -> (u32, u32, u32, u32) {
        let a = hin.schema().type_id("author").unwrap();
        let c = hin.schema().type_id("conference").unwrap();
        (
            hin.node_id(a, "Tom").unwrap(),
            hin.node_id(a, "Mary").unwrap(),
            hin.node_id(c, "KDD").unwrap(),
            hin.node_id(c, "SIGMOD").unwrap(),
        )
    }

    #[test]
    fn example_2_tom_kdd_apc() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let (tom, _, kdd, sigmod) = ids(&hin);
        // Paper Example 2: HeteSim(Tom, KDD | APC) = 0.5 (unnormalized),
        // with I(KDD|PC) = {P1, P2} here.
        let raw = e.pair_unnormalized(&apc, tom, kdd).unwrap();
        assert!((raw - 0.5).abs() < 1e-12);
        // Tom never meets SIGMOD along APC.
        assert_eq!(e.pair(&apc, tom, sigmod).unwrap(), 0.0);
        // Normalized value is within [0, 1].
        let n = e.pair(&apc, tom, kdd).unwrap();
        assert!(n > 0.0 && n <= 1.0 + 1e-12);
    }

    #[test]
    fn symmetry_property_3() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let cpa = apc.reversed();
        let (tom, mary, kdd, sigmod) = ids(&hin);
        for &(a, c) in &[(tom, kdd), (tom, sigmod), (mary, kdd), (mary, sigmod)] {
            let forward = e.pair(&apc, a, c).unwrap();
            let backward = e.pair(&cpa, c, a).unwrap();
            assert!(
                (forward - backward).abs() < 1e-12,
                "HeteSim({a},{c}|APC)={forward} != HeteSim({c},{a}|CPA)={backward}"
            );
        }
    }

    #[test]
    fn self_maximum_on_symmetric_path() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apa = MetaPath::parse(hin.schema(), "APA").unwrap();
        let a = hin.schema().type_id("author").unwrap();
        for name in ["Tom", "Mary", "Bob"] {
            let i = hin.node_id(a, name).unwrap();
            let v = e.pair(&apa, i, i).unwrap();
            assert!((v - 1.0).abs() < 1e-12, "HeteSim({name},{name}|APA)={v}");
        }
    }

    #[test]
    fn matrix_agrees_with_pairs() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let m = e.matrix(&apc).unwrap();
        for a in 0..3u32 {
            for c in 0..2u32 {
                let p = e.pair(&apc, a, c).unwrap();
                assert!((m.get(a as usize, c as usize) - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matrix_values_in_unit_interval() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        for text in ["APC", "AP", "APA", "CPA"] {
            let path = MetaPath::parse(hin.schema(), text).unwrap();
            let m = e.matrix(&path).unwrap();
            for (_, _, v) in m.iter() {
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&v),
                    "path {text}: value {v} out of range"
                );
            }
        }
    }

    #[test]
    fn single_source_matches_matrix_row() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let m = e.matrix(&apc).unwrap();
        for a in 0..3u32 {
            let row = e.single_source(&apc, a).unwrap();
            for (c, &v) in row.iter().enumerate() {
                assert!((v - m.get(a as usize, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn online_pair_matches_cached_pair() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        for text in ["APC", "AP", "APAPC"] {
            let path = MetaPath::parse(hin.schema(), text).unwrap();
            let ns = hin.node_count(path.source_type());
            let nt = hin.node_count(path.target_type());
            for a in 0..ns as u32 {
                for b in 0..nt as u32 {
                    let cached = e.pair(&path, a, b).unwrap();
                    let online = e.pair_online(&path, a, b).unwrap();
                    assert!(
                        (cached - online).abs() < 1e-12,
                        "path {text} pair ({a},{b}): cached {cached} vs online {online}"
                    );
                }
            }
        }
    }

    #[test]
    fn atomic_relation_definition_7() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let ap = MetaPath::parse(hin.schema(), "AP").unwrap();
        let (tom, ..) = ids(&hin);
        let p = hin.schema().type_id("paper").unwrap();
        let p1 = hin.node_id(p, "P1").unwrap();
        let p3 = hin.node_id(p, "P3").unwrap();
        // Tom wrote P1 (among 2 papers, P1 has 1 writer):
        // unnormalized = 1 / (2 * 1) = 0.5.
        let v = e.pair_unnormalized(&ap, tom, p1).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
        // Tom did not write P3.
        assert_eq!(e.pair(&ap, tom, p3).unwrap(), 0.0);
    }

    #[test]
    fn cache_is_reused_across_queries() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let _ = e.pair(&apc, 0, 0).unwrap();
        let _ = e.pair(&apc, 1, 1).unwrap();
        let _ = e.matrix(&apc).unwrap();
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 2);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        e.clear_cache();
        assert_eq!(e.cache_stats(), CacheStats::default());
    }

    #[test]
    fn out_of_range_nodes_error() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        assert!(matches!(
            e.pair(&apc, 99, 0),
            Err(CoreError::NodeOutOfRange {
                endpoint: "source",
                ..
            })
        ));
        assert!(matches!(
            e.pair(&apc, 0, 99),
            Err(CoreError::NodeOutOfRange {
                endpoint: "target",
                ..
            })
        ));
    }

    /// A Zipf-skewed network: one star author writes most of the papers,
    /// several authors write nothing (empty matrix rows), and venue mass
    /// concentrates on one conference — the load-balance worst case the
    /// flop-balanced scheduler exists for.
    fn skewed_hin() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        // Star author writes 40 papers; a Zipf-ish tail writes 0-2 each.
        for i in 0..40 {
            b.add_edge_by_name(w, "Star", &format!("P{i}"), 1.0)
                .unwrap();
        }
        let mut x = 11usize;
        for j in 0..12 {
            let author = format!("A{j}");
            for _ in 0..(j % 3) {
                x = (x * 1103515245 + 12345) % 2147483648;
                b.add_edge_by_name(w, &author, &format!("P{}", x % 40), 1.0)
                    .unwrap();
            }
            if j % 3 == 0 {
                // Authors with no papers at all: empty rows in U_AP.
                b.add_node(a, &author);
            }
        }
        // Most papers go to one hot venue, the rest spread thin.
        for i in 0..40 {
            let venue = if i % 4 == 0 {
                format!("V{}", i % 7)
            } else {
                "HotConf".to_string()
            };
            b.add_edge_by_name(pb, &format!("P{i}"), &venue, 1.0)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn threads_produce_identical_results() {
        for hin in [fig4(), skewed_hin()] {
            let serial = HeteSimEngine::with_threads(&hin, 1);
            for text in ["APC", "APA", "AP", "APAPC"] {
                let path = MetaPath::parse(hin.schema(), text).unwrap();
                let want_matrix = serial.matrix(&path).unwrap();
                let want_top = serial.top_k(&path, 0, 10).unwrap();
                let want_pairs = serial.top_k_pairs(&path, 10).unwrap();
                // Includes threads far beyond the number of source rows.
                for threads in [2usize, 4, 7, 1024] {
                    let par = HeteSimEngine::with_threads(&hin, threads);
                    assert_eq!(
                        par.matrix(&path).unwrap(),
                        want_matrix,
                        "path {text} threads {threads}"
                    );
                    assert_eq!(par.top_k(&path, 0, 10).unwrap(), want_top);
                    assert_eq!(par.top_k_pairs(&path, 10).unwrap(), want_pairs);
                }
            }
        }
    }

    #[test]
    fn with_threads_zero_means_auto() {
        let hin = fig4();
        let auto = HeteSimEngine::with_threads(&hin, 0);
        assert_eq!(auto.threads, hetesim_sparse::parallel::default_threads());
        assert!(auto.threads >= 1);
        let serial = HeteSimEngine::with_threads(&hin, 1);
        assert_eq!(serial.threads, 1);
    }

    #[test]
    fn explanation_decomposes_the_score() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let (tom, _, kdd, sigmod) = ids(&hin);
        let ex = e.explain(&apc, tom, kdd, 10).unwrap();
        // Contributions sum to the normalized pair score.
        let pair = e.pair(&apc, tom, kdd).unwrap();
        assert!((ex.score - pair).abs() < 1e-12);
        let sum: f64 = ex.meetings.iter().map(|m| m.contribution).sum();
        assert!((sum - pair).abs() < 1e-12);
        // Tom meets KDD through exactly P1 and P2 (paper indices 0, 1).
        let p = hin.schema().type_id("paper").unwrap();
        assert_eq!(ex.middle, crate::explain::MiddleKind::Type(p));
        let mids: Vec<u32> = ex.meetings.iter().map(|m| m.middle).collect();
        assert_eq!(mids.len(), 2);
        assert!(mids.contains(&hin.node_id(p, "P1").unwrap()));
        assert!(mids.contains(&hin.node_id(p, "P2").unwrap()));
        // No meeting points for a zero pair.
        let none = e.explain(&apc, tom, sigmod, 10).unwrap();
        assert!(none.meetings.is_empty());
        assert_eq!(none.score, 0.0);
        // Truncation caps the list but not the total score field.
        let capped = e.explain(&apc, tom, kdd, 1).unwrap();
        assert_eq!(capped.meetings.len(), 1);
        assert!((capped.score - pair).abs() < 1e-12);
    }

    #[test]
    fn explanation_on_odd_path_names_edge_objects() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let ap = MetaPath::parse(hin.schema(), "AP").unwrap();
        let (tom, ..) = ids(&hin);
        let p = hin.schema().type_id("paper").unwrap();
        let p1 = hin.node_id(p, "P1").unwrap();
        let ex = e.explain(&ap, tom, p1, 5).unwrap();
        let w = hin.schema().relation_id("writes").unwrap();
        assert_eq!(
            ex.middle,
            crate::explain::MiddleKind::EdgeObjects { relation: w }
        );
        // Tom and P1 meet at exactly one edge object: the (Tom, P1) edge.
        assert_eq!(ex.meetings.len(), 1);
    }

    #[test]
    fn prefix_reuse_is_behavior_preserving() {
        let hin = fig4();
        let plain = HeteSimEngine::new(&hin);
        let reuse = HeteSimEngine::new(&hin).reuse_prefixes(true);
        for text in ["APC", "AP", "APA", "APAPC", "CPAPA"] {
            let path = MetaPath::parse(hin.schema(), text).unwrap();
            let a = plain.matrix(&path).unwrap();
            let b = reuse.matrix(&path).unwrap();
            assert!(
                a.max_abs_diff(&b).unwrap() < 1e-12,
                "path {text}: prefix-reuse result differs"
            );
        }
        // Concatenable paths share prefixes: CPAPA and APAPC's reversed
        // right halves overlap, so the prefix cache holds fewer entries
        // than the total number of steps multiplied out.
        assert!(reuse.prefix_cache_len() > 0);
        let before = reuse.prefix_cache_len();
        // Re-querying a longer path with a shared prefix reuses entries
        // instead of rebuilding from scratch.
        let apapa = MetaPath::parse(hin.schema(), "APAPA").unwrap();
        let _ = reuse.matrix(&apapa).unwrap();
        let after = reuse.prefix_cache_len();
        // APAPA's halves (A-P and A-P reversed prefixes already cached)
        // add at most one new prefix per side.
        assert!(after - before <= 2, "before {before}, after {after}");
    }

    #[test]
    fn top_k_pairs_matches_matrix_maxima() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let m = e.matrix(&apc).unwrap();
        let mut all: Vec<(u32, u32, f64)> =
            m.iter().map(|(a, b, v)| (a as u32, b as u32, v)).collect();
        all.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .unwrap()
                .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
        });
        for k in [1usize, 2, 4, 100] {
            let pairs = e.top_k_pairs(&apc, k).unwrap();
            assert_eq!(pairs.len(), k.min(all.len()));
            for (got, want) in pairs.iter().zip(&all) {
                assert!((got.score - want.2).abs() < 1e-12);
            }
            // Sorted descending.
            for w in pairs.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
        assert!(e.top_k_pairs(&apc, 0).unwrap().is_empty());
    }

    #[test]
    fn truncated_pair_exact_with_large_keep() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        for text in ["APC", "APAPC", "AP"] {
            let path = MetaPath::parse(hin.schema(), text).unwrap();
            for a in 0..3u32 {
                let nt = hin.node_count(path.target_type()) as u32;
                for b in 0..nt {
                    let exact = e.pair(&path, a, b).unwrap();
                    let approx = e.pair_truncated(&path, a, b, 100).unwrap();
                    assert!(
                        (exact - approx).abs() < 1e-12,
                        "path {text} ({a},{b}): exact {exact} vs truncated {approx}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_pair_with_keep_one_follows_mode() {
        let hin = fig4();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        // keep=1 collapses each walker to its single most likely object;
        // the score stays within [0, 1] and remains 0 where exact is 0.
        for a in 0..3u32 {
            for b in 0..2u32 {
                let approx = e.pair_truncated(&apc, a, b, 1).unwrap();
                assert!((0.0..=1.0 + 1e-12).contains(&approx));
                if e.pair(&apc, a, b).unwrap() == 0.0 {
                    assert_eq!(approx, 0.0);
                }
            }
        }
    }

    #[test]
    fn author_with_no_papers_scores_zero() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        let idle = b.add_node(a, "Idle");
        let hin = b.build();
        let e = HeteSimEngine::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        // "If O(s|R1) is empty we define the relevance to be 0."
        assert_eq!(e.pair(&apc, idle, 0).unwrap(), 0.0);
        let row = e.single_source(&apc, idle).unwrap();
        assert!(row.iter().all(|&v| v == 0.0));
    }
}
