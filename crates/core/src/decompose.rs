//! Path and relation decomposition (Definitions 5–7 of the paper).
//!
//! HeteSim needs the source walker (along the path) and the target walker
//! (against the path) to meet at the *same objects*. For an even-length
//! path they meet at the middle type; for an odd-length path they would
//! meet "inside" the middle atomic relation, so the paper inserts an *edge
//! object* type `E` — one instance per relation instance — splitting that
//! relation `R` into `R = RO ∘ RI` (Definition 6). Property 1 shows the
//! split is exact and unique; [`edge_split`] materializes it and the tests
//! verify `W_AE · W_EB = W`.

use crate::Result;
use hetesim_graph::{Hin, MetaPath};
use hetesim_sparse::CsrMatrix;

/// The two halves of a decomposed relevance path, ready to be turned into
/// reachable-probability matrices.
///
/// `left` holds the traversal-oriented adjacency matrices of `PL` (source
/// type → middle), `right_rev` those of `PR⁻¹` (target type → middle). For
/// odd-length paths the last matrix of each half is the corresponding side
/// of the edge-object split.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Adjacency matrices from the source type to the middle type.
    pub left: Vec<CsrMatrix>,
    /// Adjacency matrices from the target type back to the middle type
    /// (i.e. along `PR⁻¹`).
    pub right_rev: Vec<CsrMatrix>,
    /// Dimension of the middle type (number of objects both walkers can
    /// meet at; for odd paths, the number of edge objects).
    pub middle_dim: usize,
    /// True when an edge-object split was inserted (odd-length path).
    pub used_edge_objects: bool,
}

/// Splits an atomic relation's weighted adjacency `W` into `(W_AE, W_EB)`
/// per Definition 6: one edge object per stored entry, with
/// `w_ae = w_eb = sqrt(w_ab)` so that `W_AE · W_EB = W` exactly
/// (Property 1).
pub fn edge_split(w: &CsrMatrix) -> (CsrMatrix, CsrMatrix) {
    let ne = w.nnz();
    // W_AE: rows = A, one column per edge object, in row-major edge order —
    // so within each row the edge-object columns are increasing and CSR
    // invariants hold by construction.
    let mut ae_indptr = Vec::with_capacity(w.nrows() + 1);
    ae_indptr.push(0usize);
    let mut ae_indices = Vec::with_capacity(ne);
    let mut ae_values = Vec::with_capacity(ne);
    // W_EB: rows = edge objects (same order), exactly one entry per row.
    let mut eb_indptr = Vec::with_capacity(ne + 1);
    eb_indptr.push(0usize);
    let mut eb_indices = Vec::with_capacity(ne);
    let mut eb_values = Vec::with_capacity(ne);

    let mut e = 0u32;
    for r in 0..w.nrows() {
        for (&c, &v) in w.row_indices(r).iter().zip(w.row_values(r)) {
            let s = v.abs().sqrt();
            ae_indices.push(e);
            ae_values.push(s);
            eb_indices.push(c);
            eb_values.push(if v < 0.0 { -s } else { s });
            eb_indptr.push(eb_indices.len());
            e += 1;
        }
        ae_indptr.push(ae_indices.len());
    }
    let ae = CsrMatrix::from_raw_usize(w.nrows(), ne, ae_indptr, ae_indices, ae_values);
    let eb = CsrMatrix::from_raw_usize(ne, w.ncols(), eb_indptr, eb_indices, eb_values);
    (ae, eb)
}

/// The *fused* equivalent of the edge-object split: instead of
/// materializing `E` (one object per relation instance), computes the
/// quantities the HeteSim pipeline actually consumes, in closed form.
///
/// With `S_a = Σ_{b'} √w(a,b')` and `T_b = Σ_{a'} √w(a',b)`:
///
/// * the meeting-mass matrix through `E` is
///   `M(a, b) = w(a, b) / (S_a · T_b)` — because each edge object is
///   reachable from exactly one `a` and one `b`, the product
///   `rownorm(W_AE) · rownorm(W_EBᵀ)ᵀ` collapses entry-wise;
/// * the squared row norm of the left half over `E` is
///   `q_A(a) = Σ_b w(a, b) / S_a²` (and symmetrically `q_B`).
///
/// Both are `O(nnz)` with no edge-object storage; `Decomposition`-based
/// and fused results agree to machine precision (tested below and ablated
/// in the benches).
#[derive(Debug, Clone)]
pub struct FusedAtomic {
    /// `M(a, b) = w(a,b) / (S_a T_b)`: the unnormalized HeteSim of the
    /// atomic relation (Definition 7) before cosine normalization.
    pub meeting: CsrMatrix,
    /// Squared L2 norms of the left walker's distribution over `E`,
    /// per source object.
    pub left_sq_norms: Vec<f64>,
    /// Squared L2 norms of the right walker's distribution over `E`,
    /// per target object.
    pub right_sq_norms: Vec<f64>,
}

/// Computes the fused atomic-relation quantities (see [`FusedAtomic`]).
pub fn fused_atomic(w: &CsrMatrix) -> FusedAtomic {
    let mut s_row = vec![0.0f64; w.nrows()]; // Σ √w per source
    let mut t_col = vec![0.0f64; w.ncols()]; // Σ √w per target
    let mut w_row = vec![0.0f64; w.nrows()]; // Σ w per source
    let mut w_col = vec![0.0f64; w.ncols()]; // Σ w per target
    for (a, b, v) in w.iter() {
        let sq = v.abs().sqrt();
        s_row[a] += sq;
        t_col[b] += sq;
        w_row[a] += v.abs();
        w_col[b] += v.abs();
    }
    let mut coo = hetesim_sparse::CooMatrix::with_capacity(w.nrows(), w.ncols(), w.nnz());
    for (a, b, v) in w.iter() {
        let denom = s_row[a] * t_col[b];
        if denom > 0.0 {
            coo.push(a, b, v / denom);
        }
    }
    let left_sq_norms = (0..w.nrows())
        .map(|a| {
            if s_row[a] > 0.0 {
                w_row[a] / (s_row[a] * s_row[a])
            } else {
                0.0
            }
        })
        .collect();
    let right_sq_norms = (0..w.ncols())
        .map(|b| {
            if t_col[b] > 0.0 {
                w_col[b] / (t_col[b] * t_col[b])
            } else {
                0.0
            }
        })
        .collect();
    FusedAtomic {
        meeting: coo.to_csr(),
        left_sq_norms,
        right_sq_norms,
    }
}

/// Decomposes a relevance path `P` into `PL` / `PR⁻¹` matrix chains
/// (Definition 5), inserting the edge-object split for odd lengths.
pub fn decompose(hin: &Hin, path: &MetaPath) -> Result<Decomposition> {
    let steps = path.steps();
    let l = steps.len();
    if l % 2 == 0 {
        let mid = l / 2;
        let left: Vec<CsrMatrix> = steps[..mid]
            .iter()
            .map(|&s| hin.step_adjacency(s).clone())
            .collect();
        let right_rev: Vec<CsrMatrix> = steps[mid..]
            .iter()
            .rev()
            .map(|&s| hin.step_adjacency(s.reversed()).clone())
            .collect();
        let middle_dim = left
            .last()
            .map(|m| m.ncols())
            .unwrap_or_else(|| hin.node_count(path.source_type()));
        Ok(Decomposition {
            left,
            right_rev,
            middle_dim,
            used_edge_objects: false,
        })
    } else {
        // Odd: split the middle step's adjacency through edge objects.
        let mid_step = l / 2;
        let w = hin.step_adjacency(steps[mid_step]);
        let (ae, eb) = edge_split(w);
        let middle_dim = ae.ncols();
        let mut left: Vec<CsrMatrix> = steps[..mid_step]
            .iter()
            .map(|&s| hin.step_adjacency(s).clone())
            .collect();
        left.push(ae);
        let mut right_rev: Vec<CsrMatrix> = steps[mid_step + 1..]
            .iter()
            .rev()
            .map(|&s| hin.step_adjacency(s.reversed()).clone())
            .collect();
        right_rev.push(eb.transpose());
        Ok(Decomposition {
            left,
            right_rev,
            middle_dim,
            used_edge_objects: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};
    use hetesim_sparse::CooMatrix;

    fn fig5_matrix() -> CsrMatrix {
        // Figure 5(a): a1-{b1,b2}, a2-{b2,b3,b4}, a3-{b1,b4}.
        let mut coo = CooMatrix::new(3, 4);
        for (a, b) in [(0, 0), (0, 1), (1, 1), (1, 2), (1, 3), (2, 0), (2, 3)] {
            coo.push(a, b, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn edge_split_reconstructs_relation() {
        // Property 1: R = RO ∘ RI.
        let w = fig5_matrix();
        let (ae, eb) = edge_split(&w);
        assert_eq!(ae.ncols(), w.nnz());
        assert_eq!(eb.nrows(), w.nnz());
        let product = ae.matmul(&eb).unwrap();
        assert!(product.max_abs_diff(&w).unwrap() < 1e-12);
    }

    #[test]
    fn edge_split_weighted_relation() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 9.0);
        let w = coo.to_csr();
        let (ae, eb) = edge_split(&w);
        assert_eq!(ae.get(0, 0), 2.0);
        assert_eq!(eb.get(1, 1), 3.0);
        assert!(ae.matmul(&eb).unwrap().max_abs_diff(&w).unwrap() < 1e-12);
    }

    #[test]
    fn edge_split_each_edge_object_has_unit_degree() {
        let w = fig5_matrix();
        let (ae, eb) = edge_split(&w);
        // Every edge object has exactly one in-edge and one out-edge.
        for e in 0..eb.nrows() {
            assert_eq!(eb.row_nnz(e), 1);
        }
        let ae_t = ae.transpose();
        for e in 0..ae_t.nrows() {
            assert_eq!(ae_t.row_nnz(e), 1);
        }
    }

    fn toy_hin() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn fused_atomic_matches_materialized_split() {
        let w = fig5_matrix();
        let fused = fused_atomic(&w);
        // Materialized pipeline: rownorm(W_AE) · rownorm(W_EBᵀ)ᵀ.
        let (ae, eb) = edge_split(&w);
        let left = ae.row_normalized();
        let right = eb.transpose().row_normalized();
        let meeting = left.matmul(&right.transpose()).unwrap();
        assert!(meeting.max_abs_diff(&fused.meeting).unwrap() < 1e-12);
        // Norms agree too.
        for (a, &sq) in fused.left_sq_norms.iter().enumerate() {
            let n = left.row(a).l2_norm();
            assert!((n * n - sq).abs() < 1e-12, "left norm {a}");
        }
        for (b, &sq) in fused.right_sq_norms.iter().enumerate() {
            let n = right.row(b).l2_norm();
            assert!((n * n - sq).abs() < 1e-12, "right norm {b}");
        }
        // Figure 5 oracle: a2 row of the meeting matrix.
        for (b, expected) in [
            (0usize, 0.0),
            (1, 1.0 / 6.0),
            (2, 1.0 / 3.0),
            (3, 1.0 / 6.0),
        ] {
            assert!((fused.meeting.get(1, b) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_atomic_weighted_and_empty_rows() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 4.0);
        coo.push(0, 1, 9.0);
        coo.push(1, 1, 1.0);
        // Row 2 has no edges.
        let w = coo.to_csr();
        let fused = fused_atomic(&w);
        // S_0 = 2 + 3 = 5; T_1 = 3 + 1 = 4. M(0,1) = 9 / (5·4).
        assert!((fused.meeting.get(0, 1) - 9.0 / 20.0).abs() < 1e-12);
        assert_eq!(fused.left_sq_norms[2], 0.0);
        // q_A(0) = (4 + 9) / 25.
        assert!((fused.left_sq_norms[0] - 13.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn even_path_splits_at_middle_type() {
        let hin = toy_hin();
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let d = decompose(&hin, &apc).unwrap();
        assert!(!d.used_edge_objects);
        assert_eq!(d.left.len(), 1);
        assert_eq!(d.right_rev.len(), 1);
        // Middle type is paper (3 nodes).
        assert_eq!(d.middle_dim, 3);
        // Left goes author->paper, right goes conference->paper.
        assert_eq!(d.left[0].shape(), (2, 3));
        assert_eq!(d.right_rev[0].shape(), (2, 3));
    }

    #[test]
    fn odd_path_inserts_edge_objects() {
        let hin = toy_hin();
        let ap = MetaPath::parse(hin.schema(), "AP").unwrap();
        let d = decompose(&hin, &ap).unwrap();
        assert!(d.used_edge_objects);
        // writes has 3 instances -> 3 edge objects.
        assert_eq!(d.middle_dim, 3);
        assert_eq!(d.left.len(), 1);
        assert_eq!(d.right_rev.len(), 1);
        assert_eq!(d.left[0].shape(), (2, 3));
        assert_eq!(d.right_rev[0].shape(), (3, 3)); // papers x edge objects
    }

    #[test]
    fn odd_longer_path_shapes_chain() {
        let hin = toy_hin();
        let apvc_like = MetaPath::parse(hin.schema(), "APC").unwrap(); // even
        let d_even = decompose(&hin, &apvc_like).unwrap();
        // A three-step path: A-P-C-P (author to papers of same conference).
        let apcp = MetaPath::parse(hin.schema(), "A-P-C-P").unwrap();
        let d = decompose(&hin, &apcp).unwrap();
        assert!(d.used_edge_objects);
        // Middle relation is P->C with 3 instances.
        assert_eq!(d.middle_dim, 3);
        // Left chain: A->P adjacency then P->E split.
        assert_eq!(d.left.len(), 2);
        assert_eq!(d.left[0].shape(), (2, 3));
        assert_eq!(d.left[1].shape(), (3, 3));
        // Right chain: P->C adjacency then C->E split side.
        assert_eq!(d.right_rev.len(), 2);
        assert_eq!(d.right_rev[0].shape(), (3, 2));
        assert_eq!(d.right_rev[1].shape(), (2, 3));
        // Sanity: even decomposition untouched by odd logic.
        assert_eq!(d_even.left.len(), 1);
    }
}
