//! Binary snapshots: instant cold start for paper-scale networks.
//!
//! Loading a heterogeneous network from TSV means re-parsing strings,
//! re-hashing every node name, merging parallel edges and re-running the
//! offline half-path materialization (Section 4.6 of the paper) — minutes
//! of work at DBLP scale that produces exactly the same bytes every time.
//! A snapshot persists the finished artifacts instead: the [`Hin`]'s
//! schema, node registries and adjacency matrices, plus the materialized
//! half-path products of any warmed relevance paths, in one compact
//! little-endian file. Loading is a bounds-checked decode straight into
//! the CSR layout the engines query — no parsing, no SpGEMM — and yields
//! bitwise-identical query results because the derived structures
//! (transposes, row norms) are recomputed through the same deterministic
//! code the engine itself uses.
//!
//! The byte-level format is specified in `docs/SNAPSHOT.md`. In short: an
//! 8-byte magic, a versioned 32-byte header, a section table, and one
//! CRC-32-guarded section per artifact kind ([`SECTION_SCHEMA`],
//! [`SECTION_NODES`], [`SECTION_ADJ`], [`SECTION_PATHS`]). The loader is
//! strict — *reject, don't guess*: every failure mode maps to a typed
//! [`SnapshotError`], a single flipped byte anywhere in the file is
//! caught by a checksum (or an earlier typed check), and nothing is
//! handed to [`CsrMatrix`] constructors before full structural
//! validation, so corrupt input can never panic or load silently wrong.

use crate::cache::Halves;
use hetesim_graph::{binio as gbin, Direction, GraphError, Hin, MetaPath, Schema, Step};
use hetesim_sparse::{binio as sbin, CsrMatrix, SparseError};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HETESNAP";

/// Format version written by this build and the only one it accepts.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes (magic through header CRC).
const HEADER_LEN: usize = 32;

/// Length of one section-table entry in bytes.
const SECTION_ENTRY_LEN: usize = 24;

/// Section kind: schema (types, abbreviations, relations).
pub const SECTION_SCHEMA: u32 = 1;
/// Section kind: per-type node-name registries.
pub const SECTION_NODES: u32 = 2;
/// Section kind: per-relation adjacency matrices.
pub const SECTION_ADJ: u32 = 3;
/// Section kind: materialized half-path products of warmed paths.
pub const SECTION_PATHS: u32 = 4;

/// Errors produced while writing, verifying or loading a snapshot. Each
/// distinguishable corruption mode maps to its own variant so callers
/// (and tests) can tell a stale format from a truncated download from a
/// bit flip.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file is shorter than a declared structure requires.
    Truncated {
        /// What was being read when the bytes ran out.
        what: String,
        /// Bytes the structure declares.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A CRC-32 over the header or a section payload does not match the
    /// stored checksum — the file was corrupted after writing.
    ChecksumMismatch {
        /// Which region failed (`"header"` or a section name).
        section: String,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes present.
        computed: u32,
    },
    /// The checksums match but a payload violates the format's structural
    /// rules (duplicate or unknown section, trailing bytes, bad path key).
    Corrupt {
        /// Description of the violated rule.
        what: String,
    },
    /// A decoded schema/network failed graph-level validation.
    Graph(GraphError),
    /// A decoded matrix failed sparse-level validation.
    Sparse(SparseError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: magic bytes are {found:02x?}")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::Truncated {
                what,
                needed,
                actual,
            } => write!(
                f,
                "snapshot truncated while reading {what}: need {needed} bytes, have {actual}"
            ),
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Graph(e) => write!(f, "corrupt snapshot (graph): {e}"),
            SnapshotError::Sparse(e) => write!(f, "corrupt snapshot (matrix): {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Graph(e) => Some(e),
            SnapshotError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}

impl From<SparseError> for SnapshotError {
    fn from(e: SparseError) -> Self {
        SnapshotError::Sparse(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// Convenience alias for snapshot entry points.
pub type Result<T> = std::result::Result<T, SnapshotError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/final 0xFFFFFFFF)
// ---------------------------------------------------------------------------

/// Slicing-by-16 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[t][b]` advances byte `b` through `t` additional
/// zero bytes. Verifying a paper-scale snapshot checksums several
/// megabytes on every cold start, so the ~8× throughput of slicing over
/// the one-byte loop is directly visible in load latency. The computed
/// checksum is bit-for-bit the same CRC-32 either way.
const CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 (IEEE) of a byte slice — the checksum algorithm named in
/// `docs/SNAPSHOT.md`, exposed so tools and tests can reproduce the
/// stored values.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let b = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        let c = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
        let d = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
        crc = CRC_TABLES[15][(a & 0xFF) as usize]
            ^ CRC_TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[12][(a >> 24) as usize]
            ^ CRC_TABLES[11][(b & 0xFF) as usize]
            ^ CRC_TABLES[10][((b >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[9][((b >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[8][(b >> 24) as usize]
            ^ CRC_TABLES[7][(c & 0xFF) as usize]
            ^ CRC_TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(c >> 24) as usize]
            ^ CRC_TABLES[3][(d & 0xFF) as usize]
            ^ CRC_TABLES[2][((d >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((d >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Section-table plumbing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: u32,
    crc: u32,
    offset: u64,
    len: u64,
}

fn section_name(kind: u32) -> &'static str {
    match kind {
        SECTION_SCHEMA => "schema",
        SECTION_NODES => "nodes",
        SECTION_ADJ => "adjacency",
        SECTION_PATHS => "paths",
        _ => "unknown",
    }
}

/// Per-section summary reported by [`snapshot_info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section kind tag as stored.
    pub kind: u32,
    /// Human name of the kind (`"schema"`, `"nodes"`, …).
    pub name: &'static str,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Stored (and verified) CRC-32 of the payload.
    pub crc32: u32,
}

/// Summary of a verified snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Format version.
    pub version: u32,
    /// Total file length in bytes.
    pub file_bytes: u64,
    /// Node types in the schema.
    pub types: usize,
    /// Relations in the schema.
    pub relations: usize,
    /// Total nodes across all types.
    pub nodes: usize,
    /// Total stored edges across all relations.
    pub edges: usize,
    /// Display specs of the warmed paths carried by the snapshot.
    pub warm_paths: Vec<String>,
    /// Per-section sizes and checksums, in file order.
    pub sections: Vec<SectionInfo>,
}

/// One warmed relevance path restored from a snapshot: the parsed path
/// plus its two half-products exactly as serialized.
#[derive(Debug)]
pub struct WarmPath {
    /// The relevance path, reconstructed against the snapshot's schema.
    pub path: MetaPath,
    /// Human-readable display form stored alongside (informational).
    pub spec: String,
    /// `PM_PL` (source type × middle).
    pub left: CsrMatrix,
    /// `PM_PR⁻¹` (target type × middle).
    pub right: CsrMatrix,
}

/// A fully loaded and verified snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The reassembled network.
    pub hin: Hin,
    /// Warmed half-path products, ready for
    /// [`crate::HeteSimEngine::install_halves`].
    pub warm: Vec<WarmPath>,
    /// Format version of the file.
    pub version: u32,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_str(s: &str, out: &mut Vec<u8>) {
    let len = u32::try_from(s.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn encode_nodes(hin: &Hin, out: &mut Vec<u8>) {
    for ty in hin.schema().type_ids() {
        let names = hin.node_names(ty);
        out.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            push_str(name, out);
        }
    }
}

fn encode_adj(hin: &Hin, out: &mut Vec<u8>) {
    out.extend_from_slice(&(hin.schema().relation_count() as u32).to_le_bytes());
    for rel in hin.schema().relation_ids() {
        sbin::encode_csr(hin.adjacency(rel), out);
    }
}

fn encode_paths(schema: &Schema, warm: &[(MetaPath, Arc<Halves>)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(warm.len() as u32).to_le_bytes());
    for (path, halves) in warm {
        push_str(&path.cache_key(), out);
        push_str(&path.display(schema), out);
        sbin::encode_csr(&halves.left, out);
        sbin::encode_csr(&halves.right, out);
    }
}

/// Serializes `hin` plus the given warmed half-path products into the
/// snapshot file at `path`, returning the same summary [`snapshot_info`]
/// would report. The write is atomic at filesystem granularity: bytes are
/// assembled in memory, written to `<path>.tmp`, then renamed over the
/// destination — a crash never leaves a half-written snapshot behind.
///
/// Only the `left`/`right` halves are stored per warmed path; the derived
/// transpose and row norms are recomputed on load through the engine's
/// own code path, which keeps the file smaller and guarantees
/// bit-identity with a freshly built engine.
pub fn write_snapshot(
    path: &Path,
    hin: &Hin,
    warm: &[(MetaPath, Arc<Halves>)],
) -> Result<SnapshotInfo> {
    let _span = hetesim_obs::span!(
        "core.snapshot.write",
        sections = 4u64,
        warm_paths = warm.len(),
    );

    // Assemble section payloads.
    let mut payloads: Vec<(u32, Vec<u8>)> = Vec::with_capacity(4);
    let mut buf = Vec::new();
    gbin::encode_schema(hin.schema(), &mut buf);
    payloads.push((SECTION_SCHEMA, std::mem::take(&mut buf)));
    encode_nodes(hin, &mut buf);
    payloads.push((SECTION_NODES, std::mem::take(&mut buf)));
    encode_adj(hin, &mut buf);
    payloads.push((SECTION_ADJ, std::mem::take(&mut buf)));
    encode_paths(hin.schema(), warm, &mut buf);
    payloads.push((SECTION_PATHS, std::mem::take(&mut buf)));

    // Lay the file out: header, section table, payloads in table order.
    let table_len = payloads.len() * SECTION_ENTRY_LEN;
    let mut offset = (HEADER_LEN + table_len) as u64;
    let mut entries = Vec::with_capacity(payloads.len());
    for (kind, payload) in &payloads {
        entries.push(SectionEntry {
            kind: *kind,
            crc: crc32(payload),
            offset,
            len: payload.len() as u64,
        });
        offset += payload.len() as u64;
    }
    let file_len = offset;

    let mut file = Vec::with_capacity(file_len as usize);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&VERSION.to_le_bytes());
    file.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    file.extend_from_slice(&file_len.to_le_bytes());
    file.extend_from_slice(&0u32.to_le_bytes()); // reserved
    let crc_field = file.len(); // header CRC patched in below
    file.extend_from_slice(&0u32.to_le_bytes());
    for e in &entries {
        file.extend_from_slice(&e.kind.to_le_bytes());
        file.extend_from_slice(&e.crc.to_le_bytes());
        file.extend_from_slice(&e.offset.to_le_bytes());
        file.extend_from_slice(&e.len.to_le_bytes());
    }
    // The header checksum covers everything before the payloads except
    // the checksum field itself: header prefix + full section table. Any
    // flipped byte in the preamble therefore fails verification.
    let mut guarded = Vec::with_capacity(crc_field + table_len);
    guarded.extend_from_slice(&file[..crc_field]);
    guarded.extend_from_slice(&file[HEADER_LEN..]);
    let header_crc = crc32(&guarded);
    file[crc_field..crc_field + 4].copy_from_slice(&header_crc.to_le_bytes());
    for (_, payload) in &payloads {
        file.extend_from_slice(payload);
    }

    // Write via a temp file + rename so readers never observe a prefix.
    let tmp = path.with_extension("snap.tmp");
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;
    hetesim_obs::add("core.snapshot.write.bytes", file.len() as u64);

    Ok(SnapshotInfo {
        version: VERSION,
        file_bytes: file_len,
        types: hin.schema().type_count(),
        relations: hin.schema().relation_count(),
        nodes: hin.total_nodes(),
        edges: hin.total_edges(),
        warm_paths: warm.iter().map(|(p, _)| p.display(hin.schema())).collect(),
        sections: entries
            .iter()
            .map(|e| SectionInfo {
                kind: e.kind,
                name: section_name(e.kind),
                bytes: e.len,
                crc32: e.crc,
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn read_u32_at(buf: &[u8], at: usize) -> u32 {
    // Callers bounds-check before calling; the fallback keeps this
    // panic-free regardless.
    match buf.get(at..at + 4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

fn read_u64_at(buf: &[u8], at: usize) -> u64 {
    match buf.get(at..at + 8) {
        Some(b) => u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
        None => 0,
    }
}

/// Validates the preamble — length, magic, version, section-table
/// bounds, header CRC, declared file length, per-section bounds and
/// kinds — and returns the section entries. Section *payload* CRCs are
/// checked separately (see [`verify_section_crc`]) so the bulk sections
/// can be verified concurrently. Shared by [`read_snapshot`] and
/// [`snapshot_info`].
fn verify_preamble(buf: &[u8]) -> Result<Vec<SectionEntry>> {
    if buf.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            what: "header".to_string(),
            needed: HEADER_LEN as u64,
            actual: buf.len() as u64,
        });
    }
    if buf[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&buf[..8]);
        return Err(SnapshotError::BadMagic { found });
    }
    let version = read_u32_at(buf, 8);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let section_count = read_u32_at(buf, 12) as usize;
    let table_len = section_count.saturating_mul(SECTION_ENTRY_LEN);
    let table_end = HEADER_LEN.saturating_add(table_len);
    if buf.len() < table_end {
        return Err(SnapshotError::Truncated {
            what: "section table".to_string(),
            needed: table_end as u64,
            actual: buf.len() as u64,
        });
    }
    // Header CRC next: it covers the file-length field and the whole
    // section table, so any preamble corruption (including a flipped
    // section count that survived the bounds check above) is caught here
    // before those values are trusted.
    let crc_field = HEADER_LEN - 4;
    let stored = read_u32_at(buf, crc_field);
    let mut guarded = Vec::with_capacity(crc_field + table_len);
    guarded.extend_from_slice(&buf[..crc_field]);
    guarded.extend_from_slice(&buf[HEADER_LEN..table_end]);
    let computed = crc32(&guarded);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            section: "header".to_string(),
            stored,
            computed,
        });
    }
    let file_len = read_u64_at(buf, 16);
    if file_len != buf.len() as u64 {
        return Err(SnapshotError::Truncated {
            what: "file body".to_string(),
            needed: file_len,
            actual: buf.len() as u64,
        });
    }
    let mut entries = Vec::with_capacity(section_count);
    for i in 0..section_count {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        let entry = SectionEntry {
            kind: read_u32_at(buf, at),
            crc: read_u32_at(buf, at + 4),
            offset: read_u64_at(buf, at + 8),
            len: read_u64_at(buf, at + 16),
        };
        let end = entry.offset.saturating_add(entry.len);
        if end > buf.len() as u64 || entry.offset < table_end as u64 {
            return Err(SnapshotError::Truncated {
                what: format!("{} section payload", section_name(entry.kind)),
                needed: end,
                actual: buf.len() as u64,
            });
        }
        if section_name(entry.kind) == "unknown" {
            return Err(SnapshotError::Corrupt {
                what: format!("unknown section kind {}", entry.kind),
            });
        }
        entries.push(entry);
    }
    Ok(entries)
}

/// Payload bytes of a section whose bounds [`verify_preamble`] already
/// validated.
fn section_bytes<'a>(buf: &'a [u8], e: &SectionEntry) -> &'a [u8] {
    &buf[e.offset as usize..(e.offset + e.len) as usize]
}

/// Checks one section's CRC-32 against its table entry.
fn verify_section_crc(buf: &[u8], e: &SectionEntry) -> Result<()> {
    let computed = crc32(section_bytes(buf, e));
    if computed != e.crc {
        return Err(SnapshotError::ChecksumMismatch {
            section: section_name(e.kind).to_string(),
            stored: e.crc,
            computed,
        });
    }
    Ok(())
}

/// Finds the unique section entry of a kind; duplicates and absences
/// are format violations.
fn unique_entry(entries: &[SectionEntry], kind: u32) -> Result<SectionEntry> {
    let mut found = None;
    for e in entries {
        if e.kind == kind {
            if found.is_some() {
                return Err(SnapshotError::Corrupt {
                    what: format!("duplicate {} section", section_name(kind)),
                });
            }
            found = Some(*e);
        }
    }
    found.ok_or_else(|| SnapshotError::Corrupt {
        what: format!("missing {} section", section_name(kind)),
    })
}

/// Reads a length-prefixed UTF-8 string through the sparse byte reader.
fn read_str(reader: &mut sbin::ByteReader<'_>, what: &str) -> Result<String> {
    let len = reader.read_u32(what)? as usize;
    let bytes = reader.take(len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt {
        what: format!("{what}: invalid UTF-8"),
    })
}

/// Reconstructs a [`MetaPath`] from its canonical cache key (`"+0-1…"`:
/// one direction sign and relation ordinal per step). The key — unlike
/// the display form — never collapses parallel relations, so the
/// round-trip is exact.
fn path_from_key(schema: &Schema, key: &str) -> Result<MetaPath> {
    let rels: Vec<_> = schema.relation_ids().collect();
    let mut steps = Vec::new();
    let mut chars = key.chars().peekable();
    while let Some(sign) = chars.next() {
        let dir = match sign {
            '+' => Direction::Forward,
            '-' => Direction::Backward,
            other => {
                return Err(SnapshotError::Corrupt {
                    what: format!("path key {key:?}: unexpected {other:?}"),
                })
            }
        };
        let mut ordinal = 0usize;
        let mut digits = 0;
        while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
            ordinal = ordinal.saturating_mul(10).saturating_add(d as usize);
            digits += 1;
            chars.next();
        }
        if digits == 0 {
            return Err(SnapshotError::Corrupt {
                what: format!("path key {key:?}: missing relation ordinal"),
            });
        }
        let rel = *rels.get(ordinal).ok_or_else(|| SnapshotError::Corrupt {
            what: format!("path key {key:?}: relation #{ordinal} not in schema"),
        })?;
        steps.push(match dir {
            Direction::Forward => Step::forward(rel),
            Direction::Backward => Step::backward(rel),
        });
    }
    if steps.is_empty() {
        return Err(SnapshotError::Corrupt {
            what: format!("path key {key:?} is empty"),
        });
    }
    Ok(MetaPath::from_steps(schema, steps)?)
}

fn decode_paths(buf: &[u8], schema: &Schema) -> Result<Vec<WarmPath>> {
    let mut reader = sbin::ByteReader::new(buf);
    let count = reader.read_u32("warm path count")? as usize;
    let mut warm = Vec::with_capacity(count.min(buf.len() / 8 + 1));
    for i in 0..count {
        let key = read_str(&mut reader, "warm path key")?;
        let spec = read_str(&mut reader, "warm path spec")?;
        let path = path_from_key(schema, &key)?;
        let left = sbin::decode_csr(&mut reader)?;
        let right = sbin::decode_csr(&mut reader)?;
        if left.ncols() != right.ncols() {
            return Err(SnapshotError::Corrupt {
                what: format!(
                    "warm path #{i} ({spec}): halves disagree on middle type \
                     ({} vs {} columns)",
                    left.ncols(),
                    right.ncols()
                ),
            });
        }
        warm.push(WarmPath {
            path,
            spec,
            left,
            right,
        });
    }
    if reader.remaining() != 0 {
        return Err(SnapshotError::Corrupt {
            what: format!("{} trailing bytes after paths section", reader.remaining()),
        });
    }
    Ok(warm)
}

fn decode_schema_section(buf: &[u8]) -> Result<Schema> {
    let mut sr = gbin::ByteReader::new(buf);
    let schema = gbin::decode_schema(&mut sr)?;
    if sr.remaining() != 0 {
        return Err(SnapshotError::Corrupt {
            what: format!("{} trailing bytes after schema section", sr.remaining()),
        });
    }
    Ok(schema)
}

fn decode_names_section(buf: &[u8], type_count: usize) -> Result<Vec<Vec<String>>> {
    let mut nr = gbin::ByteReader::new(buf);
    let names = gbin::decode_names(&mut nr, type_count)?;
    if nr.remaining() != 0 {
        return Err(SnapshotError::Corrupt {
            what: format!("{} trailing bytes after nodes section", nr.remaining()),
        });
    }
    Ok(names)
}

fn decode_adj_section(buf: &[u8], schema: &Schema) -> Result<Vec<CsrMatrix>> {
    let mut ar = sbin::ByteReader::new(buf);
    let rel_count = ar.read_u32("adjacency count")? as usize;
    if rel_count != schema.relation_count() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "{} adjacency matrices for {} relations",
                rel_count,
                schema.relation_count()
            ),
        });
    }
    let mut adj = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        adj.push(sbin::decode_csr(&mut ar)?);
    }
    if ar.remaining() != 0 {
        return Err(SnapshotError::Corrupt {
            what: format!("{} trailing bytes after adjacency section", ar.remaining()),
        });
    }
    Ok(adj)
}

/// Joins a decode worker, mapping the (unreachable in practice) panic
/// case to a typed error instead of propagating it.
fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    match handle.join() {
        Ok(result) => result,
        Err(_) => Err(SnapshotError::Corrupt {
            what: "snapshot decode worker panicked".to_string(),
        }),
    }
}

/// Verifies and decodes every section of an in-memory snapshot.
///
/// The preamble and the (few-hundred-byte) schema section are checked
/// first, serially, because everything else depends on them. The three
/// bulk sections — node names, adjacency, warmed paths — are then
/// CRC-verified and strictly decoded *concurrently*: each is
/// self-contained once the schema is known, and checksumming plus
/// copying several megabytes is the dominant cost of a cold start. On a
/// single-core host the scoped threads simply run back to back; results
/// and errors are identical either way because failures are reported in
/// fixed section order (checksum mismatches first, then structural
/// errors), not completion order.
fn load_sections(buf: &[u8]) -> Result<(Hin, Vec<WarmPath>, Vec<SectionEntry>)> {
    let entries = verify_preamble(buf)?;
    let schema_e = unique_entry(&entries, SECTION_SCHEMA)?;
    let nodes_e = unique_entry(&entries, SECTION_NODES)?;
    let adj_e = unique_entry(&entries, SECTION_ADJ)?;
    let paths_e = unique_entry(&entries, SECTION_PATHS)?;

    verify_section_crc(buf, &schema_e)?;
    let schema = decode_schema_section(section_bytes(buf, &schema_e))?;

    let (names_res, adj_res, paths_res) = std::thread::scope(|scope| {
        let nodes_worker = scope.spawn(|| {
            verify_section_crc(buf, &nodes_e)?;
            decode_names_section(section_bytes(buf, &nodes_e), schema.type_count())
        });
        let adj_worker = scope.spawn(|| {
            verify_section_crc(buf, &adj_e)?;
            decode_adj_section(section_bytes(buf, &adj_e), &schema)
        });
        // The paths section is the largest; decode it on this thread.
        let paths_res = verify_section_crc(buf, &paths_e)
            .and_then(|()| decode_paths(section_bytes(buf, &paths_e), &schema));
        (
            join_worker(nodes_worker),
            join_worker(adj_worker),
            paths_res,
        )
    });

    // Fixed error precedence: a checksum mismatch in any section beats
    // structural errors (a payload that fails to parse under a bad CRC
    // is corruption, not a format bug), then section order.
    for res in [
        names_res.as_ref().err(),
        adj_res.as_ref().err(),
        paths_res.as_ref().err(),
    ]
    .into_iter()
    .flatten()
    {
        if matches!(res, SnapshotError::ChecksumMismatch { .. }) {
            return Err(res.clone());
        }
    }
    let names = names_res?;
    let adj = adj_res?;
    let warm = paths_res?;
    let hin = Hin::from_parts(schema, names, adj)?;
    Ok((hin, warm, entries))
}

/// Installs warmed half-path products into an engine, recomputing the
/// derived transposes and norms through the engine's own deterministic
/// code so subsequent queries are bitwise identical to a freshly warmed
/// engine. Paths install concurrently when more than one is present —
/// each install transposes a half and scans it for finiteness, which at
/// paper scale is the last serial chunk of a cold start.
pub fn install_warm_paths(
    engine: &crate::HeteSimEngine<'_>,
    warm: Vec<WarmPath>,
) -> std::result::Result<usize, crate::CoreError> {
    let count = warm.len();
    if count <= 1 {
        for w in warm {
            engine.install_halves(&w.path, w.left, w.right)?;
        }
        return Ok(count);
    }
    let results = std::thread::scope(|scope| {
        let workers: Vec<_> = warm
            .into_iter()
            .map(|w| scope.spawn(move || engine.install_halves(&w.path, w.left, w.right)))
            .collect();
        workers
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(hetesim_sparse::SparseError::NotFinite {
                    op: "install_warm_paths worker panicked",
                }
                .into()),
            })
            .collect::<Vec<_>>()
    });
    for r in results {
        r?;
    }
    Ok(count)
}

/// Loads and fully verifies a snapshot: every checksum is checked, every
/// payload strictly decoded, the network reassembled via
/// [`Hin::from_parts`] and the warmed paths parsed against the restored
/// schema. On success the result is ready to serve queries after
/// installing the warm halves into an engine.
pub fn read_snapshot(path: &Path) -> Result<Snapshot> {
    let buf = std::fs::read(path)?;
    let _span = hetesim_obs::span!("core.snapshot.read", bytes = buf.len());
    let (hin, warm, _) = load_sections(&buf)?;
    Ok(Snapshot {
        hin,
        warm,
        version: VERSION,
    })
}

/// Verifies a snapshot end to end (exactly the checks [`read_snapshot`]
/// performs) and returns its summary without keeping the decoded network.
pub fn snapshot_info(path: &Path) -> Result<SnapshotInfo> {
    let buf = std::fs::read(path)?;
    let _span = hetesim_obs::span!("core.snapshot.verify", bytes = buf.len());
    let (hin, warm, entries) = load_sections(&buf)?;
    Ok(SnapshotInfo {
        version: VERSION,
        file_bytes: buf.len() as u64,
        types: hin.schema().type_count(),
        relations: hin.schema().relation_count(),
        nodes: hin.total_nodes(),
        edges: hin.total_edges(),
        warm_paths: warm.iter().map(|w| w.spec.clone()).collect(),
        sections: entries
            .iter()
            .map(|e| SectionInfo {
                kind: e.kind,
                name: section_name(e.kind),
                bytes: e.len,
                crc32: e.crc,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
