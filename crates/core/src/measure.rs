use crate::Result;
use hetesim_graph::MetaPath;
use hetesim_sparse::CsrMatrix;

/// One ranked search result: a target object index and its relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// Index of the target object within its type registry.
    pub index: u32,
    /// Relevance score under the queried measure and path.
    pub score: f64,
}

/// A path-based relevance measure over a heterogeneous network.
///
/// Implemented by [`crate::HeteSimEngine`] and by every baseline in
/// `hetesim-baselines` (PCRW, PathSim), so experiment harnesses can swap
/// measures behind one interface. The contract:
///
/// * `relevance_matrix` returns a `|source type| × |target type|` matrix of
///   scores for the given path;
/// * `score` returns a single entry of that matrix (implementations may
///   compute it without materializing the matrix);
/// * `rank_targets` ranks all targets for one source, best first.
pub trait PathMeasure {
    /// Short display name ("HeteSim", "PCRW", "PathSim").
    fn name(&self) -> &'static str;

    /// Full relevance matrix for a path.
    fn relevance_matrix(&self, path: &MetaPath) -> Result<CsrMatrix>;

    /// Relevance of a single pair.
    fn score(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        Ok(self.relevance_matrix(path)?.get(a as usize, b as usize))
    }

    /// All targets ranked for one source, best first (zero scores omitted).
    fn rank_targets(&self, path: &MetaPath, a: u32) -> Result<Vec<Ranked>> {
        let m = self.relevance_matrix(path)?;
        let mut out: Vec<Ranked> = m
            .row_indices(a as usize)
            .iter()
            .zip(m.row_values(a as usize))
            .map(|(&t, &s)| Ranked { index: t, score: s })
            .collect();
        out.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.index.cmp(&y.index))
        });
        Ok(out)
    }
}

impl PathMeasure for crate::HeteSimEngine<'_> {
    fn name(&self) -> &'static str {
        "HeteSim"
    }

    fn relevance_matrix(&self, path: &MetaPath) -> Result<CsrMatrix> {
        self.matrix(path)
    }

    fn score(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        self.pair(path, a, b)
    }

    fn rank_targets(&self, path: &MetaPath, a: u32) -> Result<Vec<Ranked>> {
        let nt = self.hin().node_count(path.target_type());
        self.top_k(path, a, nt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteSimEngine;
    use hetesim_graph::{HinBuilder, Schema};

    #[test]
    fn trait_object_usable() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        let hin = b.build();
        let engine = HeteSimEngine::new(&hin);
        let measure: &dyn PathMeasure = &engine;
        assert_eq!(measure.name(), "HeteSim");
        let apa = MetaPath::parse(hin.schema(), "A-P-A").unwrap();
        let m = measure.relevance_matrix(&apa).unwrap();
        assert_eq!(m.shape(), (2, 2));
        let ranked = measure.rank_targets(&apa, 1).unwrap();
        // Mary's most related author under APA is herself.
        assert_eq!(ranked[0].index, 1);
        assert!((ranked[0].score - 1.0).abs() < 1e-12);
        assert!((measure.score(&apa, 0, 1).unwrap() - m.get(0, 1)).abs() < 1e-12);
    }
}
