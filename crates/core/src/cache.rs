use hetesim_sparse::CsrMatrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

pub use hetesim_obs::CacheStats;

/// The two materialized half-path products of a decomposed relevance path,
/// plus the derived structures every query needs.
///
/// This is the unit of memoization behind the Section 4.6 optimization:
/// "the concatenation of partially materialized reachable probability
/// matrices helps to fasten the computation". Once a path's halves are
/// built, single pairs are two row reads and a sparse dot; top-k queries
/// touch only the middle objects the source actually reaches.
#[derive(Debug)]
pub struct Halves {
    /// `PM_PL`: source type × middle (row-stochastic product).
    pub left: CsrMatrix,
    /// `PM_PR⁻¹`: target type × middle.
    pub right: CsrMatrix,
    /// Transpose of `right` (middle × target), used by pruned top-k search.
    pub right_t: CsrMatrix,
    /// Euclidean norms of `left`'s rows (Definition 10 denominators).
    pub left_norms: Vec<f64>,
    /// Euclidean norms of `right`'s rows.
    pub right_norms: Vec<f64>,
}

impl Halves {
    /// Approximate heap residency of the three matrices and two norm
    /// vectors.
    pub fn mem_bytes(&self) -> usize {
        self.left.mem_bytes()
            + self.right.mem_bytes()
            + self.right_t.mem_bytes()
            + (self.left_norms.len() + self.right_norms.len()) * std::mem::size_of::<f64>()
    }
}

/// A concurrent memo table from path cache keys to materialized halves.
///
/// Shared by reference inside [`crate::HeteSimEngine`]; a read-mostly
/// `RwLock` keeps concurrent access cheap, matching the "frequently-used
/// relevance paths are computed off-line, on-line search only locates rows"
/// usage pattern the paper describes. Lookups are mirrored into the
/// `core.cache.prefix_cache.*` observability counters when metrics are
/// enabled.
#[derive(Debug, Default)]
pub struct PathCache {
    inner: RwLock<HashMap<String, Arc<Halves>>>,
    /// Materialized products of step *prefixes* (Section 4.6,
    /// optimization 2): `C-P-A` is computed once and reused by `C-P-A-P-A`,
    /// `C-P-A-P-C`, … when prefix reuse is enabled on the engine.
    partial: RwLock<HashMap<String, Arc<CsrMatrix>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Approximate resident bytes of everything cached.
    bytes: AtomicU64,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Fetches the halves for `key`, or builds and inserts them.
    pub fn get_or_build<F, E>(&self, key: &str, build: F) -> Result<Arc<Halves>, E>
    where
        F: FnOnce() -> Result<Halves, E>,
    {
        if let Some(h) = self.inner.read().unwrap().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hetesim_obs::add("core.cache.prefix_cache.hits", 1);
            return Ok(Arc::clone(h));
        }
        // Build outside the lock; a racing duplicate build is acceptable
        // (both produce identical data, last insert wins).
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        hetesim_obs::add("core.cache.prefix_cache.misses", 1);
        self.bytes
            .fetch_add(built.mem_bytes() as u64, Ordering::Relaxed);
        self.inner
            .write()
            .unwrap()
            .insert(key.to_string(), Arc::clone(&built));
        Ok(built)
    }

    /// Fetches a materialized step-prefix product, or builds and inserts
    /// it. Prefix lookups are tracked separately from half-path lookups
    /// (`core.cache.prefix.*` counters) so the two reuse mechanisms stay
    /// distinguishable in metrics output.
    pub fn get_or_build_partial<F, E>(&self, key: &str, build: F) -> Result<Arc<CsrMatrix>, E>
    where
        F: FnOnce() -> Result<CsrMatrix, E>,
    {
        if let Some(m) = self.partial.read().unwrap().get(key) {
            hetesim_obs::add("core.cache.prefix.hits", 1);
            return Ok(Arc::clone(m));
        }
        let built = Arc::new(build()?);
        hetesim_obs::add("core.cache.prefix.misses", 1);
        self.bytes
            .fetch_add(built.mem_bytes() as u64, Ordering::Relaxed);
        self.partial
            .write()
            .unwrap()
            .insert(key.to_string(), Arc::clone(&built));
        Ok(built)
    }

    /// Number of materialized prefix products.
    pub fn partial_len(&self) -> usize {
        self.partial.read().unwrap().len()
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters and residency since construction or the last clear.
    /// `hits`/`misses` count half-path lookups (prefix-product lookups are
    /// reported through metrics only); `entries` counts both kinds of
    /// cached object.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: (self.len() + self.partial_len()) as u64,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached halves and prefix products and resets counters.
    /// Evicted entries are counted into `core.cache.prefix_cache.evictions`.
    pub fn clear(&self) {
        let evicted = (self.len() + self.partial_len()) as u64;
        hetesim_obs::add("core.cache.prefix_cache.evictions", evicted);
        self.inner.write().unwrap().clear();
        self.partial.write().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_halves() -> Halves {
        let m = CsrMatrix::identity(2);
        Halves {
            left: m.clone(),
            right: m.clone(),
            right_t: m.clone(),
            left_norms: vec![1.0, 1.0],
            right_norms: vec![1.0, 1.0],
        }
    }

    #[test]
    fn build_once_then_hit() {
        let cache = PathCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let r: Result<_, ()> = cache.get_or_build("k", || {
                builds += 1;
                Ok(dummy_halves())
            });
            assert!(r.is_ok());
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0, "cached halves should report residency");
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache = PathCache::new();
        let r: Result<Arc<Halves>, &str> = cache.get_or_build("k", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn clear_resets() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("k", || Ok(dummy_halves()));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        let _: Result<_, ()> = cache.get_or_build("b", || Ok(dummy_halves()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn partial_entries_count_into_stats() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build_partial("p", || Ok(CsrMatrix::identity(3)));
        let _: Result<_, ()> = cache.get_or_build_partial("p", || Ok(CsrMatrix::identity(3)));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        // Half-path hit/miss counters are untouched by prefix lookups.
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert!(stats.bytes > 0);
    }
}
