use hetesim_obs::lockcheck::TrackedRwLock as RwLock;
use hetesim_sparse::CsrMatrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

pub use hetesim_obs::CacheStats;

/// The two materialized half-path products of a decomposed relevance path,
/// plus the derived structures every query needs.
///
/// This is the unit of memoization behind the Section 4.6 optimization:
/// "the concatenation of partially materialized reachable probability
/// matrices helps to fasten the computation". Once a path's halves are
/// built, single pairs are two row reads and a sparse dot; top-k queries
/// touch only the middle objects the source actually reaches.
#[derive(Debug)]
pub struct Halves {
    /// `PM_PL`: source type × middle (row-stochastic product).
    pub left: CsrMatrix,
    /// `PM_PR⁻¹`: target type × middle.
    pub right: CsrMatrix,
    /// Transpose of `right` (middle × target), used by pruned top-k search.
    pub right_t: CsrMatrix,
    /// Euclidean norms of `left`'s rows (Definition 10 denominators).
    pub left_norms: Vec<f64>,
    /// Euclidean norms of `right`'s rows.
    pub right_norms: Vec<f64>,
}

impl Halves {
    /// Approximate heap residency of the three matrices and two norm
    /// vectors. CSR row pointers are `u32` (nnz is checked to fit the u32
    /// index space at construction), so a cached half costs
    /// `12·nnz + 4·(nrows+1)` matrix bytes — budgets sized against the
    /// old `usize` pointers hold strictly more entries now.
    pub fn mem_bytes(&self) -> usize {
        self.left.mem_bytes()
            + self.right.mem_bytes()
            + self.right_t.mem_bytes()
            + (self.left_norms.len() + self.right_norms.len()) * std::mem::size_of::<f64>()
    }
}

/// A cached value plus the bookkeeping the byte-budgeted eviction policy
/// needs: its residency and the logical clock of its last access.
#[derive(Debug)]
struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    /// Logical access time (ticks of the cache-wide counter). Updated on
    /// every hit under the read lock, which is why it is atomic.
    last_used: AtomicU64,
}

impl<T> Entry<T> {
    fn new(value: Arc<T>, bytes: u64, tick: u64) -> Self {
        Entry {
            value,
            bytes,
            last_used: AtomicU64::new(tick),
        }
    }
}

/// A concurrent memo table from path cache keys to materialized halves,
/// with an optional byte budget enforced by least-recently-used eviction.
///
/// Shared by reference inside [`crate::HeteSimEngine`]; a read-mostly
/// `RwLock` keeps concurrent access cheap, matching the "frequently-used
/// relevance paths are computed off-line, on-line search only locates rows"
/// usage pattern the paper describes. Lookups are mirrored into the
/// `core.cache.prefix_cache.*` observability counters when metrics are
/// enabled.
///
/// # Byte budget
///
/// [`PathCache::set_budget_bytes`] caps the approximate resident bytes of
/// everything cached (half-path products and step-prefix products
/// together). When an insert pushes residency past the cap, entries are
/// evicted least-recently-used first — across both kinds of entry — until
/// the cache fits again; each eviction increments the
/// `core.cache.evictions` counter and the current residency is published
/// as the `core.cache.resident_bytes` gauge. A value whose own footprint
/// exceeds the whole budget is returned to the caller but never cached, so
/// resident bytes never exceed the budget. Evicting an entry only drops
/// the cache's reference: outstanding [`Arc`]s returned from earlier
/// lookups keep their data alive until released, and a later lookup of an
/// evicted key simply rebuilds it.
#[derive(Debug)]
pub struct PathCache {
    inner: RwLock<HashMap<String, Entry<Halves>>>,
    /// Materialized products of step *prefixes* (Section 4.6,
    /// optimization 2): `C-P-A` is computed once and reused by `C-P-A-P-A`,
    /// `C-P-A-P-C`, … when prefix reuse is enabled on the engine.
    partial: RwLock<HashMap<String, Entry<CsrMatrix>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Approximate resident bytes of everything cached.
    bytes: AtomicU64,
    /// Byte budget; `0` means unlimited.
    budget: AtomicU64,
    /// Entries evicted to stay under the budget (does not count
    /// [`PathCache::clear`]).
    evictions: AtomicU64,
    /// Logical clock driving LRU ordering.
    tick: AtomicU64,
}

impl Default for PathCache {
    fn default() -> PathCache {
        PathCache {
            inner: RwLock::named("core.cache.inner", HashMap::new()),
            partial: RwLock::named("core.cache.partial", HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            budget: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }
}

impl PathCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// An empty cache that evicts least-recently-used entries once
    /// resident bytes would exceed `budget_bytes` (`0` = unlimited).
    pub fn with_budget_bytes(budget_bytes: u64) -> Self {
        let cache = PathCache::default();
        cache.budget.store(budget_bytes, Ordering::Relaxed);
        cache
    }

    /// Sets the byte budget (`0` = unlimited). Shrinking the budget below
    /// current residency evicts immediately.
    pub fn set_budget_bytes(&self, budget_bytes: u64) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let mut partial = self.partial.write().unwrap_or_else(PoisonError::into_inner);
        self.evict_locked(&mut inner, &mut partial);
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held by the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted so far to stay under the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Evicts least-recently-used entries (across both maps) until
    /// residency fits the budget again. Caller holds both write locks.
    fn evict_locked(
        &self,
        inner: &mut HashMap<String, Entry<Halves>>,
        partial: &mut HashMap<String, Entry<CsrMatrix>>,
    ) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        while self.bytes.load(Ordering::Relaxed) > budget {
            // LRU scan: entry counts are small (one per distinct path or
            // prefix), so a linear pass beats maintaining an ordered
            // structure under the read-mostly lock.
            let oldest_half = inner
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, e)| (k.clone(), e.last_used.load(Ordering::Relaxed)));
            let oldest_prefix = partial
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, e)| (k.clone(), e.last_used.load(Ordering::Relaxed)));
            let freed = match (oldest_half, oldest_prefix) {
                (Some((hk, ht)), Some((_, pt))) if ht <= pt => inner.remove(&hk).map(|e| e.bytes),
                (Some(_), Some((pk, _))) => partial.remove(&pk).map(|e| e.bytes),
                (Some((hk, _)), None) => inner.remove(&hk).map(|e| e.bytes),
                (None, Some((pk, _))) => partial.remove(&pk).map(|e| e.bytes),
                (None, None) => None,
            };
            match freed {
                Some(bytes) => {
                    self.bytes.fetch_sub(bytes, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    hetesim_obs::add("core.cache.evictions", 1);
                }
                None => break,
            }
        }
        hetesim_obs::set(
            "core.cache.resident_bytes",
            self.bytes.load(Ordering::Relaxed),
        );
    }

    /// Fetches the halves for `key`, or builds and inserts them.
    pub fn get_or_build<F, E>(&self, key: &str, build: F) -> Result<Arc<Halves>, E>
    where
        F: FnOnce() -> Result<Halves, E>,
    {
        if let Some(e) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            e.last_used.store(self.next_tick(), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            hetesim_obs::add("core.cache.prefix_cache.hits", 1);
            hetesim_obs::trace_event("core.cache.hit");
            return Ok(Arc::clone(&e.value));
        }
        // Build outside the lock; a racing duplicate build is acceptable
        // (both produce identical data, last insert wins).
        hetesim_obs::trace_event("core.cache.miss");
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        hetesim_obs::add("core.cache.prefix_cache.misses", 1);
        let bytes = built.mem_bytes() as u64;
        let budget = self.budget.load(Ordering::Relaxed);
        if budget != 0 && bytes > budget {
            // Larger than the whole budget: hand it to the caller uncached
            // so residency never exceeds the cap.
            return Ok(built);
        }
        let entry = Entry::new(Arc::clone(&built), bytes, self.next_tick());
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let mut partial = self.partial.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = inner.insert(key.to_string(), entry) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.evict_locked(&mut inner, &mut partial);
        Ok(built)
    }

    /// Installs a pre-built entry under `key` — the snapshot warm-start
    /// path. Counted as neither hit nor miss (nothing was looked up);
    /// budget accounting and eviction behave exactly as for
    /// [`PathCache::get_or_build`], including refusing to cache a value
    /// larger than the whole budget.
    pub fn insert(&self, key: &str, value: Arc<Halves>) {
        let bytes = value.mem_bytes() as u64;
        let budget = self.budget.load(Ordering::Relaxed);
        if budget != 0 && bytes > budget {
            return;
        }
        let entry = Entry::new(value, bytes, self.next_tick());
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let mut partial = self.partial.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = inner.insert(key.to_string(), entry) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.evict_locked(&mut inner, &mut partial);
    }

    /// Fetches a materialized step-prefix product, or builds and inserts
    /// it. Prefix lookups are tracked separately from half-path lookups
    /// (`core.cache.prefix.*` counters) so the two reuse mechanisms stay
    /// distinguishable in metrics output.
    pub fn get_or_build_partial<F, E>(&self, key: &str, build: F) -> Result<Arc<CsrMatrix>, E>
    where
        F: FnOnce() -> Result<CsrMatrix, E>,
    {
        if let Some(e) = self
            .partial
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            e.last_used.store(self.next_tick(), Ordering::Relaxed);
            hetesim_obs::add("core.cache.prefix.hits", 1);
            return Ok(Arc::clone(&e.value));
        }
        let built = Arc::new(build()?);
        hetesim_obs::add("core.cache.prefix.misses", 1);
        let bytes = built.mem_bytes() as u64;
        let budget = self.budget.load(Ordering::Relaxed);
        if budget != 0 && bytes > budget {
            return Ok(built);
        }
        let entry = Entry::new(Arc::clone(&built), bytes, self.next_tick());
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let mut partial = self.partial.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = partial.insert(key.to_string(), entry) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.evict_locked(&mut inner, &mut partial);
        Ok(built)
    }

    /// Number of materialized prefix products.
    pub fn partial_len(&self) -> usize {
        self.partial
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters and residency since construction or the last clear.
    /// `hits`/`misses` count half-path lookups (prefix-product lookups are
    /// reported through metrics only); `entries` counts both kinds of
    /// cached object.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: (self.len() + self.partial_len()) as u64,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached halves and prefix products and resets counters.
    /// Evicted entries are counted into `core.cache.prefix_cache.evictions`.
    pub fn clear(&self) {
        let evicted = (self.len() + self.partial_len()) as u64;
        hetesim_obs::add("core.cache.prefix_cache.evictions", evicted);
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.partial
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        hetesim_obs::set("core.cache.resident_bytes", 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_halves() -> Halves {
        let m = CsrMatrix::identity(2);
        Halves {
            left: m.clone(),
            right: m.clone(),
            right_t: m.clone(),
            left_norms: vec![1.0, 1.0],
            right_norms: vec![1.0, 1.0],
        }
    }

    #[test]
    fn build_once_then_hit() {
        let cache = PathCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let r: Result<_, ()> = cache.get_or_build("k", || {
                builds += 1;
                Ok(dummy_halves())
            });
            assert!(r.is_ok());
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0, "cached halves should report residency");
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache = PathCache::new();
        let r: Result<Arc<Halves>, &str> = cache.get_or_build("k", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn clear_resets() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("k", || Ok(dummy_halves()));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        let _: Result<_, ()> = cache.get_or_build("b", || Ok(dummy_halves()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn partial_entries_count_into_stats() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build_partial("p", || Ok(CsrMatrix::identity(3)));
        let _: Result<_, ()> = cache.get_or_build_partial("p", || Ok(CsrMatrix::identity(3)));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        // Half-path hit/miss counters are untouched by prefix lookups.
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert!(stats.bytes > 0);
    }

    /// Bytes one dummy halves entry occupies, as the cache accounts it.
    fn entry_bytes() -> u64 {
        dummy_halves().mem_bytes() as u64
    }

    #[test]
    fn resident_bytes_never_exceed_budget() {
        let per = entry_bytes();
        // Room for exactly two entries.
        let cache = PathCache::with_budget_bytes(2 * per);
        for i in 0..10 {
            let _: Result<_, ()> = cache.get_or_build(&i.to_string(), || Ok(dummy_halves()));
            assert!(
                cache.resident_bytes() <= cache.budget_bytes(),
                "after insert {i}: resident {} > budget {}",
                cache.resident_bytes(),
                cache.budget_bytes()
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 8);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let per = entry_bytes();
        let cache = PathCache::with_budget_bytes(2 * per);
        let _: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        let _: Result<_, ()> = cache.get_or_build("b", || Ok(dummy_halves()));
        // Touch "a" so "b" becomes the LRU entry.
        let _: Result<_, ()> = cache.get_or_build("a", || panic!("a should be cached"));
        let _: Result<_, ()> = cache.get_or_build("c", || Ok(dummy_halves()));
        // "b" was evicted; "a" and "c" survive.
        let _: Result<_, ()> = cache.get_or_build("a", || panic!("a should have survived"));
        let _: Result<_, ()> = cache.get_or_build("c", || panic!("c should have survived"));
        let mut rebuilt = false;
        let _: Result<_, ()> = cache.get_or_build("b", || {
            rebuilt = true;
            Ok(dummy_halves())
        });
        assert!(rebuilt, "evicted entry must rebuild on re-query");
    }

    #[test]
    fn evicted_path_is_rebuilt_correctly() {
        let per = entry_bytes();
        let cache = PathCache::with_budget_bytes(per);
        let _: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        // Inserting "b" evicts "a" (budget fits one entry).
        let _: Result<_, ()> = cache.get_or_build("b", || Ok(dummy_halves()));
        assert_eq!(cache.len(), 1);
        let again: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        let h = again.unwrap();
        // The rebuilt entry carries full, correct data.
        assert_eq!(h.left.nrows(), 2);
        assert_eq!(h.left_norms, vec![1.0, 1.0]);
        assert!(cache.resident_bytes() <= per);
    }

    #[test]
    fn oversized_entry_is_served_but_not_cached() {
        let per = entry_bytes();
        let cache = PathCache::with_budget_bytes(per / 2);
        let r: Result<_, ()> = cache.get_or_build("big", || Ok(dummy_halves()));
        assert_eq!(r.unwrap().left.nrows(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn prefix_products_share_the_budget() {
        let halves = entry_bytes();
        // Two halves entries fit; a halves entry plus the (smaller) prefix
        // product also fits, but all three together do not.
        let cache = PathCache::with_budget_bytes(2 * halves);
        let _: Result<_, ()> = cache.get_or_build_partial("p", || Ok(CsrMatrix::identity(3)));
        let _: Result<_, ()> = cache.get_or_build("h", || Ok(dummy_halves()));
        assert_eq!((cache.len(), cache.partial_len()), (1, 1));
        // A second halves entry must push out the (older) prefix product.
        let _: Result<_, ()> = cache.get_or_build("h2", || Ok(dummy_halves()));
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        assert_eq!(cache.partial_len(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let per = entry_bytes();
        let cache = PathCache::new();
        for key in ["a", "b", "c"] {
            let _: Result<_, ()> = cache.get_or_build(key, || Ok(dummy_halves()));
        }
        assert_eq!(cache.resident_bytes(), 3 * per);
        cache.set_budget_bytes(per);
        assert!(cache.resident_bytes() <= per);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let cache = PathCache::with_budget_bytes(0);
        for i in 0..20 {
            let _: Result<_, ()> = cache.get_or_build(&i.to_string(), || Ok(dummy_halves()));
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.evictions(), 0);
    }
}
