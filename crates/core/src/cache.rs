use hetesim_sparse::CsrMatrix;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The two materialized half-path products of a decomposed relevance path,
/// plus the derived structures every query needs.
///
/// This is the unit of memoization behind the Section 4.6 optimization:
/// "the concatenation of partially materialized reachable probability
/// matrices helps to fasten the computation". Once a path's halves are
/// built, single pairs are two row reads and a sparse dot; top-k queries
/// touch only the middle objects the source actually reaches.
#[derive(Debug)]
pub struct Halves {
    /// `PM_PL`: source type × middle (row-stochastic product).
    pub left: CsrMatrix,
    /// `PM_PR⁻¹`: target type × middle.
    pub right: CsrMatrix,
    /// Transpose of `right` (middle × target), used by pruned top-k search.
    pub right_t: CsrMatrix,
    /// Euclidean norms of `left`'s rows (Definition 10 denominators).
    pub left_norms: Vec<f64>,
    /// Euclidean norms of `right`'s rows.
    pub right_norms: Vec<f64>,
}

/// A concurrent memo table from path cache keys to materialized halves.
///
/// Shared by reference inside [`crate::HeteSimEngine`]; `parking_lot`'s
/// `RwLock` keeps concurrent read-mostly access cheap, matching the
/// "frequently-used relevance paths are computed off-line, on-line search
/// only locates rows" usage pattern the paper describes.
#[derive(Debug, Default)]
pub struct PathCache {
    inner: RwLock<HashMap<String, Arc<Halves>>>,
    /// Materialized products of step *prefixes* (Section 4.6,
    /// optimization 2): `C-P-A` is computed once and reused by `C-P-A-P-A`,
    /// `C-P-A-P-C`, … when prefix reuse is enabled on the engine.
    partial: RwLock<HashMap<String, Arc<CsrMatrix>>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Fetches the halves for `key`, or builds and inserts them.
    pub fn get_or_build<F, E>(&self, key: &str, build: F) -> Result<Arc<Halves>, E>
    where
        F: FnOnce() -> Result<Halves, E>,
    {
        if let Some(h) = self.inner.read().get(key) {
            *self.hits.write() += 1;
            return Ok(Arc::clone(h));
        }
        // Build outside the lock; a racing duplicate build is acceptable
        // (both produce identical data, last insert wins).
        let built = Arc::new(build()?);
        *self.misses.write() += 1;
        self.inner
            .write()
            .insert(key.to_string(), Arc::clone(&built));
        Ok(built)
    }

    /// Fetches a materialized step-prefix product, or builds and inserts
    /// it.
    pub fn get_or_build_partial<F, E>(&self, key: &str, build: F) -> Result<Arc<CsrMatrix>, E>
    where
        F: FnOnce() -> Result<CsrMatrix, E>,
    {
        if let Some(m) = self.partial.read().get(key) {
            return Ok(Arc::clone(m));
        }
        let built = Arc::new(build()?);
        self.partial
            .write()
            .insert(key.to_string(), Arc::clone(&built));
        Ok(built)
    }

    /// Number of materialized prefix products.
    pub fn partial_len(&self) -> usize {
        self.partial.read().len()
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction or the last clear.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Drops all cached halves and prefix products and resets counters.
    pub fn clear(&self) {
        self.inner.write().clear();
        self.partial.write().clear();
        *self.hits.write() = 0;
        *self.misses.write() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_halves() -> Halves {
        let m = CsrMatrix::identity(2);
        Halves {
            left: m.clone(),
            right: m.clone(),
            right_t: m.clone(),
            left_norms: vec![1.0, 1.0],
            right_norms: vec![1.0, 1.0],
        }
    }

    #[test]
    fn build_once_then_hit() {
        let cache = PathCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let r: Result<_, ()> = cache.get_or_build("k", || {
                builds += 1;
                Ok(dummy_halves())
            });
            assert!(r.is_ok());
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache = PathCache::new();
        let r: Result<Arc<Halves>, &str> = cache.get_or_build("k", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("k", || Ok(dummy_halves()));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = PathCache::new();
        let _: Result<_, ()> = cache.get_or_build("a", || Ok(dummy_halves()));
        let _: Result<_, ()> = cache.get_or_build("b", || Ok(dummy_halves()));
        assert_eq!(cache.len(), 2);
    }
}
