#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! The HeteSim relevance measure (Shi, Kong, Yu, Xie, Wu — EDBT 2012).
//!
//! HeteSim measures the relatedness of two objects — of the *same or
//! different types* — in a heterogeneous information network, relative to a
//! user-chosen relevance path. Intuitively, `HeteSim(s, t | P)` is the
//! probability that `s`, walking *along* `P`, and `t`, walking *against*
//! `P`, meet at the same object — normalized (Definition 10) to the cosine
//! of the two reachable-probability distributions over the path's middle
//! type.
//!
//! The crate is organized around the paper's own construction:
//!
//! * [`decompose`] — splits an arbitrary relevance path into two
//!   equal-length halves (Definition 5), inserting *edge objects* into the
//!   middle atomic relation of odd-length paths (Definition 6) so that the
//!   two walkers can always meet;
//! * [`reachable`] — builds reachable-probability matrices (Definition 9)
//!   as chains of row-stochastic transition matrices (Definition 8);
//! * [`HeteSimEngine`] — the user-facing query engine: full relevance
//!   matrices, single pairs, single-source rows and pruned top-k search,
//!   with the Section 4.6 optimizations (materialized half-path products,
//!   chain-order optimization, parallel multiplication);
//! * [`PathMeasure`] — the common trait implemented by HeteSim and all the
//!   baseline measures in `hetesim-baselines`, so experiments can swap
//!   measures generically.
//!
//! # Quick start
//!
//! ```
//! use hetesim_core::HeteSimEngine;
//! use hetesim_graph::{HinBuilder, MetaPath, Schema};
//!
//! // Figure 4 of the paper: Tom's papers both appear in KDD.
//! let mut schema = Schema::new();
//! let a = schema.add_type("author").unwrap();
//! let p = schema.add_type("paper").unwrap();
//! let c = schema.add_type("conference").unwrap();
//! let writes = schema.add_relation("writes", a, p).unwrap();
//! let pub_in = schema.add_relation("published_in", p, c).unwrap();
//! let mut b = HinBuilder::new(schema);
//! b.add_edge_by_name(writes, "Tom", "P1", 1.0).unwrap();
//! b.add_edge_by_name(writes, "Tom", "P2", 1.0).unwrap();
//! b.add_edge_by_name(pub_in, "P1", "KDD", 1.0).unwrap();
//! b.add_edge_by_name(pub_in, "P2", "KDD", 1.0).unwrap();
//! let hin = b.build();
//!
//! let engine = HeteSimEngine::new(&hin);
//! let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
//! let tom = hin.node_id(a, "Tom").unwrap();
//! let kdd = hin.node_id(c, "KDD").unwrap();
//! // Example 2 of the paper: the unnormalized meeting probability is 0.5.
//! let raw = engine.pair_unnormalized(&apc, tom, kdd).unwrap();
//! assert!((raw - 0.5).abs() < 1e-12);
//! ```

mod cache;
mod engine;
mod error;
mod measure;
mod topk;

pub mod decompose;
pub mod explain;
pub mod learning;
pub mod reachable;
pub mod snapshot;

pub use cache::{CacheStats, Halves, PathCache};
pub use engine::HeteSimEngine;
pub use error::CoreError;
pub use hetesim_sparse::parallel::default_threads;
pub use measure::{PathMeasure, Ranked};
pub use snapshot::{Snapshot, SnapshotError, SnapshotInfo};
pub use topk::{RankedPair, TopK};

/// Convenience alias used by fallible entry points of this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
