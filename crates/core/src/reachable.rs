//! Reachable-probability matrices (Definition 9 of the paper).
//!
//! The reachable-probability matrix of a path `P = A1 A2 … A(l+1)` is the
//! product of the row-stochastic transition matrices of its steps:
//! `PM_P = U_{A1A2} · U_{A2A3} · … · U_{AlA(l+1)}`. Its `(i, j)` entry is
//! the probability that a random walker starting at object `i` of type `A1`
//! and following `P` ends at object `j` of type `A(l+1)` — which is also
//! exactly the PCRW (path-constrained random walk) score, so the baselines
//! crate reuses these kernels.

use crate::Result;
use hetesim_graph::{Hin, Step};
use hetesim_sparse::{chain, CsrMatrix, SparseVec};

/// Row-stochastic transition matrices for a step sequence, in order.
pub fn transition_chain(hin: &Hin, steps: &[Step]) -> Vec<CsrMatrix> {
    steps.iter().map(|&s| hin.step_transition(s)).collect()
}

/// Normalizes a pre-built adjacency chain in place (each matrix becomes
/// row-stochastic). Used when the chain already contains edge-object
/// matrices from an odd-path decomposition.
pub fn normalize_chain(mats: Vec<CsrMatrix>) -> Vec<CsrMatrix> {
    mats.into_iter().map(|m| m.row_normalized()).collect()
}

/// [`normalize_chain`] with each (large enough) matrix normalized by
/// `threads` workers. Bit-identical to the serial version at every thread
/// count — per-row normalization is order-preserving.
///
/// The engine's half-path builds no longer call this: they pass each
/// factor's [`CsrMatrix::row_sum_divisors`] to the fused chain multiply
/// (`hetesim_sparse::chain::multiply_chain_fused_threaded`), which applies
/// the same divisions in-flight during the SpGEMM numeric phase instead of
/// materializing the stochastic chain. This entry point remains for
/// callers that need the normalized matrices themselves (vector
/// propagation, tests, ablations).
pub fn normalize_chain_threaded(mats: Vec<CsrMatrix>, threads: usize) -> Vec<CsrMatrix> {
    mats.into_iter()
        .map(|m| m.row_normalized_threaded(threads))
        .collect()
}

/// Multiplies a chain of stochastic matrices into a single
/// reachable-probability matrix, choosing the association order by the
/// sparse cost model.
pub fn product(mats: &[CsrMatrix]) -> Result<CsrMatrix> {
    let refs: Vec<&CsrMatrix> = mats.iter().collect();
    Ok(chain::multiply_chain(&refs)?)
}

/// Computes the full reachable-probability matrix for a step sequence.
pub fn reachable_matrix(hin: &Hin, steps: &[Step]) -> Result<CsrMatrix> {
    let mats = transition_chain(hin, steps);
    product(&mats)
}

/// Propagates a single source distribution through a chain of stochastic
/// matrices — the single-source/online-query variant (Section 4.6): one
/// sparse vector-matrix product per step instead of a full SpGEMM chain.
pub fn propagate(start: SparseVec, mats: &[CsrMatrix]) -> Result<SparseVec> {
    let mut v = start;
    for m in mats {
        v = m.vecmat(&v)?;
    }
    Ok(v)
}

/// One-hot propagation from a single object.
pub fn propagate_from(hin: &Hin, steps: &[Step], source: u32) -> Result<SparseVec> {
    let mats = transition_chain(hin, steps);
    let dim = mats
        .first()
        .map(|m| m.nrows())
        .unwrap_or_else(|| hin.total_nodes());
    propagate(SparseVec::unit(dim, source as usize), &mats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, MetaPath, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn reachable_matrix_rows_are_distributions() {
        let hin = toy();
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let pm = reachable_matrix(&hin, apc.steps()).unwrap();
        assert_eq!(pm.shape(), (2, 2));
        for r in 0..pm.nrows() {
            let s: f64 = pm.row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
        // Tom reaches KDD with probability 1 along APC.
        let a = hin.schema().type_id("author").unwrap();
        let c = hin.schema().type_id("conference").unwrap();
        let tom = hin.node_id(a, "Tom").unwrap();
        let kdd = hin.node_id(c, "KDD").unwrap();
        assert!((pm.get(tom as usize, kdd as usize) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn propagate_matches_full_matrix() {
        let hin = toy();
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let pm = reachable_matrix(&hin, apc.steps()).unwrap();
        for src in 0..2u32 {
            let v = propagate_from(&hin, apc.steps(), src).unwrap();
            let dense = v.to_dense();
            for (j, &x) in dense.iter().enumerate() {
                assert!((x - pm.get(src as usize, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn backward_path_uses_inverse_relation() {
        let hin = toy();
        let cpa = MetaPath::parse(hin.schema(), "CPA").unwrap();
        let pm = reachable_matrix(&hin, cpa.steps()).unwrap();
        assert_eq!(pm.shape(), (2, 2));
        // SIGMOD publishes only Mary's P3: reaches Mary with prob 1.
        let c = hin.schema().type_id("conference").unwrap();
        let a = hin.schema().type_id("author").unwrap();
        let sigmod = hin.node_id(c, "SIGMOD").unwrap() as usize;
        let mary = hin.node_id(a, "Mary").unwrap() as usize;
        assert!((pm.get(sigmod, mary) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_chain_makes_rows_stochastic() {
        let hin = toy();
        let w = hin.schema().relation_id("writes").unwrap();
        let mats = normalize_chain(vec![hin.adjacency(w).clone()]);
        for r in 0..mats[0].nrows() {
            let s: f64 = mats[0].row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
