//! Explanation of pair scores: *where* do the two walkers meet?
//!
//! HeteSim is a meeting probability, so every pair score decomposes
//! exactly over the middle objects of the decomposed path:
//! `HS(a, b | P) = Σ_m PL(a, m) · PR(b, m) / (‖PL(a,:)‖ ‖PR(b,:)‖)`.
//! [`crate::HeteSimEngine::explain`] returns that decomposition — for the
//! profiling use case it answers "through *which papers* is this author
//! related to KDD", turning a score into an auditable provenance list.

use hetesim_graph::{MetaPath, TypeId};

/// What the middle objects of a decomposed path are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleKind {
    /// Even-length path: the middle is an ordinary object type.
    Type(TypeId),
    /// Odd-length path: the middle is the edge-object set of the path's
    /// middle relation; index `e` is the `e`-th stored instance (row-major
    /// order of the relation's adjacency).
    EdgeObjects {
        /// The relation whose instances the walkers meet at.
        relation: hetesim_graph::RelId,
    },
}

/// One meeting point and its share of the pair's score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Meeting {
    /// Index of the middle object (see [`MiddleKind`] for the space).
    pub middle: u32,
    /// This object's contribution to the *normalized* score; the
    /// contributions of all meetings sum to the pair's HeteSim value.
    pub contribution: f64,
}

/// The decomposition of one pair query.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// What the middle indices refer to.
    pub middle: MiddleKind,
    /// Meeting points, largest contribution first.
    pub meetings: Vec<Meeting>,
    /// The pair's normalized HeteSim score (= sum of contributions).
    pub score: f64,
}

/// Derives the middle kind of a path (mirrors `decompose`).
pub fn middle_kind(path: &MetaPath) -> MiddleKind {
    let steps = path.steps();
    let l = steps.len();
    if l % 2 == 0 {
        MiddleKind::Type(path.type_sequence()[l / 2])
    } else {
        MiddleKind::EdgeObjects {
            relation: steps[l / 2].rel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::Schema;

    #[test]
    fn middle_kind_matches_parity() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        s.add_relation("published_in", p, c).unwrap();
        let apc = MetaPath::parse(&s, "APC").unwrap();
        assert_eq!(middle_kind(&apc), MiddleKind::Type(p));
        let ap = MetaPath::parse(&s, "AP").unwrap();
        assert_eq!(middle_kind(&ap), MiddleKind::EdgeObjects { relation: w });
    }
}
