//! Symmetric eigensolvers.
//!
//! Two regimes, matching how spectral clustering uses them:
//!
//! * [`jacobi`] — the cyclic Jacobi rotation method for small dense
//!   symmetric matrices (the 20-conference affinity in Table 6 is 20×20).
//!   Cubic but unconditionally robust, returns the *full* spectrum.
//! * [`subspace_iteration`] — block power iteration with Gram-Schmidt
//!   re-orthonormalization for the dominant `k` eigenpairs of a large
//!   sparse symmetric operator (the 4k-author affinity). Spectral
//!   clustering only needs the top-k eigenvectors of the normalized
//!   affinity `D^{-1/2} W D^{-1/2}` — whose dominant eigenvectors are
//!   exactly the smallest eigenvectors of the normalized Laplacian — so no
//!   shift-invert machinery is needed.

use hetesim_sparse::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full eigendecomposition of a dense symmetric matrix by cyclic Jacobi.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvector `i` is the `i`-th *column* of the returned matrix.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn jacobi(a: &DenseMatrix, max_sweeps: usize, tol: f64) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(a.nrows(), a.ncols(), "jacobi requires a square matrix");
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass; stop when annihilated.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c) * m.get(r, c);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, theta) on both sides.
                for i in 0..n {
                    let aip = m.get(i, p);
                    let aiq = m.get(i, q);
                    m.set(i, p, c * aip - s * aiq);
                    m.set(i, q, s * aip + c * aiq);
                }
                for i in 0..n {
                    let api = m.get(p, i);
                    let aqi = m.get(q, i);
                    m.set(p, i, c * api - s * aqi);
                    m.set(q, i, s * api + c * aqi);
                }
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (dst, &(_, src)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, dst, v.get(r, src));
        }
    }
    (eigenvalues, vectors)
}

/// Modified Gram-Schmidt orthonormalization of the columns of `x`.
/// Columns that collapse to (numerical) zero are re-randomized.
fn orthonormalize(x: &mut DenseMatrix, rng: &mut StdRng) {
    let (n, k) = x.shape();
    for j in 0..k {
        loop {
            for i in 0..j {
                let mut dot = 0.0;
                for r in 0..n {
                    dot += x.get(r, j) * x.get(r, i);
                }
                for r in 0..n {
                    let v = x.get(r, j) - dot * x.get(r, i);
                    x.set(r, j, v);
                }
            }
            let norm: f64 = (0..n)
                .map(|r| x.get(r, j) * x.get(r, j))
                .sum::<f64>()
                .sqrt();
            if norm > 1e-12 {
                for r in 0..n {
                    x.set(r, j, x.get(r, j) / norm);
                }
                break;
            }
            // Degenerate column: replace with fresh noise and retry.
            for r in 0..n {
                x.set(r, j, rng.random::<f64>() - 0.5);
            }
        }
    }
}

/// Top-`k` eigenpairs (by eigenvalue magnitude) of a sparse symmetric
/// matrix via subspace iteration.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvector `i` in column
/// `i`, ordered by descending Rayleigh quotient.
///
/// # Panics
/// Panics if the matrix is not square or `k` exceeds its dimension.
pub fn subspace_iteration(
    a: &CsrMatrix,
    k: usize,
    max_iterations: usize,
    tol: f64,
    seed: u64,
) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(a.nrows(), a.ncols(), "operator must be square");
    let n = a.nrows();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(n, k);
    for r in 0..n {
        for c in 0..k {
            x.set(r, c, rng.random::<f64>() - 0.5);
        }
    }
    orthonormalize(&mut x, &mut rng);
    let mut prev = vec![f64::INFINITY; k];
    for _ in 0..max_iterations {
        let mut y = a.matmul_dense(&x).expect("square operator");
        orthonormalize(&mut y, &mut rng);
        // Rayleigh quotients of the current basis.
        let ay = a.matmul_dense(&y).expect("square operator");
        let mut lambda = vec![0.0; k];
        for (j, l) in lambda.iter_mut().enumerate() {
            for r in 0..n {
                *l += y.get(r, j) * ay.get(r, j);
            }
        }
        let delta: f64 = lambda
            .iter()
            .zip(&prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        x = y;
        prev = lambda;
        if delta < tol {
            break;
        }
    }
    // Rayleigh–Ritz: the iteration converges to the dominant invariant
    // subspace, but individual columns are only an orthonormal basis of it.
    // Project A into the subspace (H = XᵀAX), solve the small dense
    // problem exactly, and rotate the basis into Ritz vectors.
    let ax = a.matmul_dense(&x).expect("square operator");
    let mut h = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            let mut s = 0.0;
            for r in 0..n {
                s += x.get(r, i) * ax.get(r, j);
            }
            h.set(i, j, s);
        }
    }
    // Symmetrize against floating-point drift.
    for i in 0..k {
        for j in (i + 1)..k {
            let m = 0.5 * (h.get(i, j) + h.get(j, i));
            h.set(i, j, m);
            h.set(j, i, m);
        }
    }
    let (values, rot) = jacobi(&h, 100, 1e-14);
    let vectors = x.matmul(&rot).expect("shape checked");
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    fn residual(a: &DenseMatrix, lambda: f64, v: &[f64]) -> f64 {
        let av = a.matvec(v).unwrap();
        av.iter()
            .zip(v)
            .map(|(&x, &y)| (x - lambda * y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let (vals, _) = jacobi(&a, 50, 1e-12);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi(&a, 50, 1e-12);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        for (j, &val) in vals.iter().enumerate() {
            let v: Vec<f64> = (0..2).map(|r| vecs.get(r, j)).collect();
            assert!(residual(&a, val, &v) < 1e-9);
        }
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 1.0]]);
        let (_, vecs) = jacobi(&a, 100, 1e-12);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|r| vecs.get(r, i) * vecs.get(r, j)).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn subspace_iteration_matches_jacobi() {
        // A random-ish symmetric matrix.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (0..8)
                    .map(|j| {
                        let (a, b) = if i <= j { (i, j) } else { (j, i) };
                        ((a * 7 + b * 3) % 5) as f64 + if a == b { 8.0 } else { 0.0 }
                    })
                    .collect()
            })
            .collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dense = DenseMatrix::from_rows(&row_refs);
        let sparse = CsrMatrix::from_dense(&dense);
        let (jv, _) = jacobi(&dense, 100, 1e-12);
        let (sv, svec) = subspace_iteration(&sparse, 3, 500, 1e-12, 42);
        for i in 0..3 {
            assert!(
                (jv[i] - sv[i]).abs() < 1e-6,
                "eigenvalue {i}: jacobi {} vs subspace {}",
                jv[i],
                sv[i]
            );
            let v: Vec<f64> = (0..8).map(|r| svec.get(r, i)).collect();
            assert!(residual(&dense, sv[i], &v) < 1e-5);
        }
    }

    #[test]
    fn subspace_iteration_deterministic_per_seed() {
        let dense = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let sparse = CsrMatrix::from_dense(&dense);
        let (v1, _) = subspace_iteration(&sparse, 2, 200, 1e-12, 7);
        let (v2, _) = subspace_iteration(&sparse, 2, 200, 1e-12, 7);
        assert_eq!(v1, v2);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn subspace_requires_square() {
        let m = CsrMatrix::zeros(2, 3);
        subspace_iteration(&m, 1, 10, 1e-8, 0);
    }
}
