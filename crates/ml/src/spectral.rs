//! Normalized-Cut spectral clustering (Shi & Malik, 2000) — the clustering
//! algorithm the paper applies to HeteSim/PathSim similarity matrices in
//! Section 5.4.
//!
//! Pipeline: symmetrize the affinity, form `B = D^{-1/2} W D^{-1/2}`
//! (whose dominant eigenvectors are the smallest eigenvectors of the
//! normalized Laplacian `L = I - B`), take the top-`k` eigenvectors, row
//! normalize the embedding, and cluster the rows with k-means++.

use crate::eigen::{jacobi, subspace_iteration};
use crate::kmeans::{kmeans, KMeansConfig};
use hetesim_sparse::{CooMatrix, CsrMatrix, DenseMatrix};

/// Configuration for [`normalized_cut`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Subspace-iteration cap for large affinities.
    pub eigen_iterations: usize,
    /// Eigenvalue convergence tolerance.
    pub eigen_tolerance: f64,
    /// Matrices up to this dimension use the dense Jacobi solver
    /// (exact full spectrum) instead of subspace iteration.
    pub dense_threshold: usize,
    /// k-means settings for the embedding.
    pub kmeans: KMeansConfig,
    /// RNG seed for the eigensolver.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            eigen_iterations: 300,
            eigen_tolerance: 1e-9,
            dense_threshold: 64,
            kmeans: KMeansConfig::default(),
            seed: 0,
        }
    }
}

/// Symmetrizes an affinity as `(W + Wᵀ) / 2` — relevance matrices are
/// symmetric in exact arithmetic for symmetric paths, but floating-point
/// products can drift, and spectral clustering needs exact symmetry.
pub fn symmetrize(w: &CsrMatrix) -> CsrMatrix {
    w.add(&w.transpose()).expect("square affinity").scaled(0.5)
}

/// The degree-normalized affinity `D^{-1/2} W D^{-1/2}`; rows/columns with
/// zero degree stay zero.
pub fn normalized_affinity(w: &CsrMatrix) -> CsrMatrix {
    let d = w.row_sums();
    let dinv_sqrt: Vec<f64> = d
        .iter()
        .map(|&x| if x > 0.0 { 1.0 / x.sqrt() } else { 0.0 })
        .collect();
    let mut coo = CooMatrix::with_capacity(w.nrows(), w.ncols(), w.nnz());
    for (r, c, v) in w.iter() {
        coo.push(r, c, v * dinv_sqrt[r] * dinv_sqrt[c]);
    }
    coo.to_csr()
}

/// The spectral embedding: top-`k` eigenvectors of the normalized
/// affinity, rows scaled to unit length.
pub fn spectral_embedding(w: &CsrMatrix, k: usize, cfg: &SpectralConfig) -> DenseMatrix {
    assert_eq!(w.nrows(), w.ncols(), "affinity must be square");
    let b = normalized_affinity(&symmetrize(w));
    let n = b.nrows();
    let mut embedding = if n <= cfg.dense_threshold {
        let (_, vecs) = jacobi(&b.to_dense(), 200, 1e-12);
        // Keep the first k columns (sorted by descending eigenvalue).
        let mut e = DenseMatrix::zeros(n, k);
        for r in 0..n {
            for c in 0..k {
                e.set(r, c, vecs.get(r, c));
            }
        }
        e
    } else {
        let (_, vecs) =
            subspace_iteration(&b, k, cfg.eigen_iterations, cfg.eigen_tolerance, cfg.seed);
        vecs
    };
    // Row normalization (Ng–Jordan–Weiss style), guarding empty rows.
    for r in 0..n {
        let row = embedding.row_mut(r);
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    embedding
}

/// Normalized-Cut clustering of a (possibly asymmetric, possibly drifted)
/// affinity matrix into `k` clusters. Returns one label per row.
pub fn normalized_cut(w: &CsrMatrix, k: usize, cfg: &SpectralConfig) -> Vec<usize> {
    let embedding = spectral_embedding(w, k, cfg);
    kmeans(&embedding, k, cfg.kmeans).labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense blocks with a weak bridge.
    fn two_block_affinity() -> CsrMatrix {
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let same = (i < 6) == (j < 6);
                let w = if same { 1.0 } else { 0.01 };
                coo.push(i, j, w);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn recovers_two_blocks() {
        let w = two_block_affinity();
        let labels = normalized_cut(&w, 2, &SpectralConfig::default());
        let first = labels[0];
        assert!(labels[..6].iter().all(|&l| l == first));
        let second = labels[6];
        assert_ne!(first, second);
        assert!(labels[6..].iter().all(|&l| l == second));
    }

    #[test]
    fn recovers_blocks_with_subspace_path() {
        // Force the sparse eigensolver by lowering the dense threshold.
        let w = two_block_affinity();
        let cfg = SpectralConfig {
            dense_threshold: 4,
            ..SpectralConfig::default()
        };
        let labels = normalized_cut(&w, 2, &cfg);
        let first = labels[0];
        assert!(labels[..6].iter().all(|&l| l == first));
        assert!(labels[6..].iter().all(|&l| l != first));
    }

    #[test]
    fn normalized_affinity_spectral_radius_at_most_one() {
        let w = two_block_affinity();
        let b = normalized_affinity(&symmetrize(&w));
        let (vals, _) = jacobi(&b.to_dense(), 200, 1e-12);
        assert!(vals[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn symmetrize_handles_asymmetric_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        let s = symmetrize(&coo.to_csr());
        assert_eq!(s.get(0, 1), 0.5);
        assert_eq!(s.get(1, 0), 0.5);
    }

    #[test]
    fn zero_degree_rows_survive() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let w = coo.to_csr();
        // Node 2 is isolated; the pipeline must not produce NaNs.
        let labels = normalized_cut(&w, 2, &SpectralConfig::default());
        assert_eq!(labels.len(), 3);
    }
}
