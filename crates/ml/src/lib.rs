#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Learning-task substrate for the HeteSim experiments.
//!
//! Section 5 of the paper evaluates HeteSim inside two machine-learning
//! tasks — ranking-based query search (AUC, Table 5) and Normalized-Cut
//! spectral clustering (NMI, Table 6) — and ranks experts by comparing
//! relatedness scores against a paper-count ground truth (rank difference,
//! Figure 6). None of these components are available in the allowed
//! dependency set, so this crate implements them from scratch:
//!
//! * [`eigen`] — a cyclic Jacobi eigensolver for small dense symmetric
//!   matrices, and subspace (orthogonal) iteration for the top-k
//!   eigenpairs of large sparse symmetric operators;
//! * [`spectral`] — Shi–Malik Normalized Cut: normalized affinity, spectral
//!   embedding, row normalization, k-means;
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding and restarts;
//! * [`metrics`] — NMI, ROC AUC, mean rank difference, precision@k.

pub mod eigen;
pub mod kmeans;
pub mod metrics;
pub mod spectral;
