//! Lloyd's k-means with k-means++ seeding and multi-start.
//!
//! The final stage of Normalized-Cut spectral clustering: the rows of the
//! spectral embedding are clustered in `R^k`. Deterministic given a seed.

use hetesim_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Independent restarts; the assignment with the lowest inertia wins.
    pub restarts: usize,
    /// RNG seed (restart `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iterations: 100,
            restarts: 8,
            seed: 0,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label of each row.
    pub labels: Vec<usize>,
    /// Final centroids (`k × d`).
    pub centroids: DenseMatrix,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: the first centroid is uniform, each next one is drawn
/// with probability proportional to squared distance from the chosen set.
fn seed_centroids(data: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let (n, d) = data.shape();
    let mut centroids = DenseMatrix::zeros(k, d);
    let first = rng.random_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist = vec![f64::INFINITY; n];
    for c in 1..k {
        for (r, d) in dist.iter_mut().enumerate() {
            let d2 = sq_dist(data.row(r), centroids.row(c - 1));
            if d2 < *d {
                *d = d2;
            }
        }
        let total: f64 = dist.iter().sum();
        let chosen = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut pick = n - 1;
            for (r, &w) in dist.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = r;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
    }
    centroids
}

fn lloyd(data: &DenseMatrix, k: usize, cfg: KMeansConfig, rng: &mut StdRng) -> KMeansResult {
    let (n, d) = data.shape();
    let mut centroids = seed_centroids(data, k, rng);
    let mut labels = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _ in 0..cfg.max_iterations {
        // Assign.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for (r, label) in labels.iter_mut().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for c in 0..k {
                let d2 = sq_dist(data.row(r), centroids.row(c));
                if d2 < best.1 {
                    best = (c, d2);
                }
            }
            if *label != best.0 {
                *label = best.0;
                changed = true;
            }
            new_inertia += best.1;
        }
        inertia = new_inertia;
        if !changed {
            break;
        }
        // Update.
        let mut sums = DenseMatrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for r in 0..n {
            counts[labels[r]] += 1;
            let row = data.row(r);
            let srow = sums.row_mut(labels[r]);
            for (s, &v) in srow.iter_mut().zip(row) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Empty cluster: re-seed at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(data.row(a), centroids.row(labels[a]))
                            .partial_cmp(&sq_dist(data.row(b), centroids.row(labels[b])))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / count as f64;
                for j in 0..d {
                    centroids.set(c, j, sums.get(c, j) * inv);
                }
            }
        }
    }
    KMeansResult {
        labels,
        centroids,
        inertia,
    }
}

/// Clusters the rows of `data` into `k` groups.
///
/// # Panics
/// Panics if `k == 0` or `k > data.nrows()`.
pub fn kmeans(data: &DenseMatrix, k: usize, cfg: KMeansConfig) -> KMeansResult {
    assert!(k >= 1 && k <= data.nrows(), "k must be in 1..=n");
    let mut best: Option<KMeansResult> = None;
    for restart in 0..cfg.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(restart as u64));
        let run = lloyd(data, k, cfg, &mut rng);
        if best.as_ref().map_or(true, |b| run.inertia < b.inertia) {
            best = Some(run);
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> DenseMatrix {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
        }
        for i in 0..10 {
            rows.push(vec![5.0 + (i as f64) * 0.01, 5.0]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        DenseMatrix::from_rows(&refs)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let res = kmeans(&data, 2, KMeansConfig::default());
        // All of the first ten share a label, all of the last ten share the
        // other.
        let first = res.labels[0];
        assert!(res.labels[..10].iter().all(|&l| l == first));
        let second = res.labels[10];
        assert_ne!(first, second);
        assert!(res.labels[10..].iter().all(|&l| l == second));
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn k_equals_one() {
        let data = two_blobs();
        let res = kmeans(&data, 1, KMeansConfig::default());
        assert!(res.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = DenseMatrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let res = kmeans(&data, 3, KMeansConfig::default());
        assert!(res.inertia < 1e-18);
        let mut sorted = res.labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_blobs();
        let cfg = KMeansConfig {
            seed: 123,
            ..KMeansConfig::default()
        };
        let a = kmeans(&data, 2, cfg);
        let b = kmeans(&data, 2, cfg);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        kmeans(&two_blobs(), 0, KMeansConfig::default());
    }
}
