//! Evaluation metrics used in Section 5 of the paper.
//!
//! * [`nmi`] — Normalized Mutual Information between two labelings
//!   (clustering quality, Table 6);
//! * [`auc`] — area under the ROC curve of a score vector against binary
//!   relevance labels (query quality, Table 5);
//! * [`mean_rank_difference`] — average absolute displacement between a
//!   ranking and a ground-truth ranking (expert finding, Figure 6);
//! * [`precision_at_k`] — fraction of the top-k that is relevant.

use std::collections::HashMap;

/// Normalized Mutual Information between two labelings of the same items,
/// `NMI(a, b) = I(a; b) / sqrt(H(a) · H(b))`, in `[0, 1]`. Returns 1.0 for
/// two identical single-cluster labelings (both entropies zero).
///
/// # Panics
/// Panics if the labelings differ in length or are empty.
///
/// ```
/// use hetesim_ml::metrics::nmi;
/// let truth = [0, 0, 1, 1];
/// assert!((nmi(&truth, &[7, 7, 3, 3]) - 1.0).abs() < 1e-12); // relabeled
/// assert!(nmi(&truth, &[0, 1, 0, 1]) < 1e-9); // independent
/// ```
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    assert!(!a.is_empty(), "labelings must be non-empty");
    let n = a.len() as f64;
    let mut ca: HashMap<usize, f64> = HashMap::new();
    let mut cb: HashMap<usize, f64> = HashMap::new();
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *ca.entry(x).or_insert(0.0) += 1.0;
        *cb.entry(y).or_insert(0.0) += 1.0;
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
    }
    let h = |counts: &HashMap<usize, f64>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c / n;
        let px = ca[&x] / n;
        let py = cb[&y] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    if ha == 0.0 && hb == 0.0 {
        // Both labelings are a single cluster: identical partitions.
        1.0
    } else if ha == 0.0 || hb == 0.0 {
        0.0
    } else {
        (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
    }
}

/// Area under the ROC curve via the Mann–Whitney statistic, with tie
/// correction (tied scores contribute half wins). Returns `None` when
/// either class is empty (AUC is undefined).
///
/// # Panics
/// Panics if `scores` and `labels` differ in length.
///
/// ```
/// use hetesim_ml::metrics::auc;
/// let scores = [0.9, 0.8, 0.2, 0.1];
/// assert_eq!(auc(&scores, &[true, true, false, false]), Some(1.0));
/// assert_eq!(auc(&scores, &[true; 4]), None); // one class only
/// ```
pub fn auc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "scores/labels must align");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Rank-based computation: sort by score ascending, assign mid-ranks to
    // ties, sum positive ranks.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[i]
            .partial_cmp(&scores[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Items order[i..=j] share a tie; mid-rank (1-based).
        let mid_rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    let u = rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0;
    Some(u / (n_pos_f * n_neg_f))
}

/// Positions (0-based rank) each item receives under descending `scores`,
/// with ties broken by ascending index for determinism.
pub fn ranking_positions(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[j]
            .partial_cmp(&scores[i])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| i.cmp(&j))
    });
    let mut pos = vec![0usize; scores.len()];
    for (rank, &item) in order.iter().enumerate() {
        pos[item] = rank;
    }
    pos
}

/// Mean absolute rank displacement between a measure's scores and a
/// ground-truth score vector, evaluated over the `top_n` items of the
/// ground-truth ranking (Figure 6's "average rank difference on the top
/// 200 authors in ground truth"). Lower is better.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn mean_rank_difference(measure: &[f64], ground_truth: &[f64], top_n: usize) -> f64 {
    assert_eq!(measure.len(), ground_truth.len(), "vectors must align");
    let m_pos = ranking_positions(measure);
    let g_pos = ranking_positions(ground_truth);
    let mut order: Vec<usize> = (0..ground_truth.len()).collect();
    order.sort_by_key(|&i| g_pos[i]);
    let take = top_n.min(order.len());
    if take == 0 {
        return 0.0;
    }
    order[..take]
        .iter()
        .map(|&i| (m_pos[i] as f64 - g_pos[i] as f64).abs())
        .sum::<f64>()
        / take as f64
}

/// Fraction of the `k` highest-scoring items that are labeled relevant.
/// Returns `None` when `k == 0` or there are no items.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "scores/labels must align");
    if k == 0 || scores.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[j]
            .partial_cmp(&scores[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let take = k.min(order.len());
    let hits = order[..take].iter().filter(|&&i| labels[i]).count();
    Some(hits as f64 / take as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmi_identical_labelings() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        // Permuted label names keep NMI at 1.
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_labelings_near_zero() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 1e-9);
    }

    #[test]
    fn nmi_partial_agreement_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let v = nmi(&a, &b);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn nmi_single_cluster_cases() {
        let a = vec![0, 0, 0];
        assert_eq!(nmi(&a, &a), 1.0);
        let b = vec![0, 1, 2];
        assert_eq!(nmi(&a, &b), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        assert_eq!(auc(&scores, &labels), Some(1.0));
        let inv: Vec<bool> = labels.iter().map(|&l| !l).collect();
        assert_eq!(auc(&scores, &inv), Some(0.0));
    }

    #[test]
    fn auc_random_is_half() {
        let scores = vec![0.5; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let v = auc(&scores, &labels).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs won: (0.8>0.6),
        // (0.8>0.2), (0.4<0.6 loses), (0.4>0.2) => 3/4.
        let scores = vec![0.8, 0.4, 0.6, 0.2];
        let labels = vec![true, true, false, false];
        assert!((auc(&scores, &labels).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_undefined_for_single_class() {
        assert_eq!(auc(&[0.1, 0.2], &[true, true]), None);
        assert_eq!(auc(&[0.1, 0.2], &[false, false]), None);
    }

    #[test]
    fn rank_positions_descending() {
        let pos = ranking_positions(&[0.1, 0.9, 0.5]);
        assert_eq!(pos, vec![2, 0, 1]);
    }

    #[test]
    fn rank_difference_zero_for_identical_ranking() {
        let gt = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(mean_rank_difference(&gt, &gt, 5), 0.0);
    }

    #[test]
    fn rank_difference_detects_swap() {
        let gt = vec![5.0, 4.0, 3.0];
        let measure = vec![4.0, 5.0, 3.0]; // top two swapped
        let d = mean_rank_difference(&measure, &gt, 3);
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
        // Restricting to top-1 of ground truth sees displacement 1.
        let d1 = mean_rank_difference(&measure, &gt, 1);
        assert!((d1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_basics() {
        let scores = vec![0.9, 0.8, 0.7, 0.1];
        let labels = vec![true, false, true, true];
        assert_eq!(precision_at_k(&scores, &labels, 1), Some(1.0));
        assert_eq!(precision_at_k(&scores, &labels, 2), Some(0.5));
        assert_eq!(precision_at_k(&scores, &labels, 0), None);
        // k beyond length clamps.
        assert_eq!(precision_at_k(&scores, &labels, 10), Some(0.75));
    }
}
