//! Property-based tests of the metric and clustering substrate.

use hetesim_ml::eigen::{jacobi, subspace_iteration};
use hetesim_ml::kmeans::{kmeans, KMeansConfig};
use hetesim_ml::metrics::{auc, mean_rank_difference, nmi, precision_at_k, ranking_positions};
use hetesim_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

proptest! {
    /// NMI is symmetric in its arguments and invariant to relabeling.
    #[test]
    fn nmi_symmetric_and_relabel_invariant(
        labels in proptest::collection::vec(0..4usize, 2..40),
        other in proptest::collection::vec(0..4usize, 2..40),
    ) {
        let n = labels.len().min(other.len());
        let a = &labels[..n];
        let b = &other[..n];
        prop_assert!((nmi(a, b) - nmi(b, a)).abs() < 1e-12);
        // Relabel a by an offset permutation: NMI unchanged.
        let relabeled: Vec<usize> = a.iter().map(|&x| (x + 7) * 13).collect();
        prop_assert!((nmi(a, b) - nmi(&relabeled, b)).abs() < 1e-12);
        let v = nmi(a, b);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((nmi(a, a) - 1.0).abs() < 1e-12 || v == 0.0 && a.iter().all(|&x| x == a[0]));
    }

    /// AUC is invariant under strictly monotone score transforms and
    /// flips to 1 - AUC when labels are inverted.
    #[test]
    fn auc_monotone_invariant_and_complement(
        scores in proptest::collection::vec(0.0..1.0f64, 4..40),
        labels in proptest::collection::vec(any::<bool>(), 4..40),
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let l = &labels[..n];
        let n_pos = l.iter().filter(|&&x| x).count();
        prop_assume!(n_pos > 0 && n_pos < n);
        let base = auc(s, l).unwrap();
        prop_assert!((0.0..=1.0).contains(&base));
        // Monotone transform (affine with positive slope + exp).
        let transformed: Vec<f64> = s.iter().map(|&x| (3.0 * x + 1.0).exp()).collect();
        prop_assert!((auc(&transformed, l).unwrap() - base).abs() < 1e-9);
        // Label complement.
        let inv: Vec<bool> = l.iter().map(|&x| !x).collect();
        prop_assert!((auc(s, &inv).unwrap() - (1.0 - base)).abs() < 1e-9);
    }

    /// Rank positions form a permutation; rank difference of a vector with
    /// itself is zero and the metric is symmetric in its two rankings.
    #[test]
    fn rank_difference_properties(
        scores in proptest::collection::vec(0.0..1.0f64, 2..30),
        other in proptest::collection::vec(0.0..1.0f64, 2..30),
    ) {
        let n = scores.len().min(other.len());
        let a = &scores[..n];
        let b = &other[..n];
        let pos = ranking_positions(a);
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(mean_rank_difference(a, a, n), 0.0);
        let d = mean_rank_difference(a, b, n);
        prop_assert!(d >= 0.0 && d <= (n - 1) as f64);
    }

    /// precision@k is within [0, 1] and monotone relationship with label
    /// density holds at k = n.
    #[test]
    fn precision_at_k_bounds(
        scores in proptest::collection::vec(0.0..1.0f64, 1..30),
        labels in proptest::collection::vec(any::<bool>(), 1..30),
        k in 1..10usize,
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let l = &labels[..n];
        let p = precision_at_k(s, l, k).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        // At k = n, precision is exactly the label density.
        let density = l.iter().filter(|&&x| x).count() as f64 / n as f64;
        prop_assert!((precision_at_k(s, l, n).unwrap() - density).abs() < 1e-12);
    }

    /// k-means always returns k or fewer distinct labels, each in range,
    /// and zero inertia when every point is a centroid candidate (k = n).
    #[test]
    fn kmeans_label_invariants(
        data in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 2), 3..20),
        k in 1..4usize,
    ) {
        prop_assume!(k <= data.len());
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let m = DenseMatrix::from_rows(&refs);
        let res = kmeans(&m, k, KMeansConfig { restarts: 2, ..KMeansConfig::default() });
        prop_assert_eq!(res.labels.len(), data.len());
        prop_assert!(res.labels.iter().all(|&l| l < k));
        prop_assert!(res.inertia >= 0.0);
    }

    /// Jacobi eigendecomposition reconstructs the matrix: A ≈ V Λ Vᵀ, and
    /// the eigenvalue sum matches the trace.
    #[test]
    fn jacobi_reconstructs(seed_vals in proptest::collection::vec(-3.0..3.0f64, 6)) {
        // Build a 3x3 symmetric matrix from 6 free entries.
        let a = DenseMatrix::from_rows(&[
            &[seed_vals[0], seed_vals[1], seed_vals[2]],
            &[seed_vals[1], seed_vals[3], seed_vals[4]],
            &[seed_vals[2], seed_vals[4], seed_vals[5]],
        ]);
        let (vals, vecs) = jacobi(&a, 100, 1e-13);
        // Trace preservation.
        let trace = seed_vals[0] + seed_vals[3] + seed_vals[5];
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-8);
        // Reconstruction.
        let mut lambda = DenseMatrix::zeros(3, 3);
        for (i, &val) in vals.iter().enumerate().take(3) {
            lambda.set(i, i, val);
        }
        let recon = vecs.matmul(&lambda).unwrap().matmul(&vecs.transpose()).unwrap();
        prop_assert!(recon.max_abs_diff(&a).unwrap() < 1e-7);
    }

    /// Subspace iteration's top eigenvalue matches Jacobi's on random
    /// diagonally-dominant symmetric matrices.
    #[test]
    fn subspace_top_eigenvalue_matches(seed_vals in proptest::collection::vec(0.0..2.0f64, 10)) {
        let n = 4;
        let mut a = DenseMatrix::zeros(n, n);
        let mut idx = 0;
        for i in 0..n {
            for j in i..n {
                let v = seed_vals[idx % seed_vals.len()] + if i == j { 4.0 } else { 0.0 };
                a.set(i, j, v);
                a.set(j, i, v);
                idx += 1;
            }
        }
        let (jv, _) = jacobi(&a, 200, 1e-13);
        let sparse = CsrMatrix::from_dense(&a);
        let (sv, _) = subspace_iteration(&sparse, 2, 600, 1e-12, 1);
        prop_assert!((jv[0] - sv[0]).abs() < 1e-5, "jacobi {} vs subspace {}", jv[0], sv[0]);
    }
}
