use crate::{RelId, TypeId};
use hetesim_sparse::SparseError;
use std::fmt;

/// Errors produced while defining schemas, building networks, or parsing
/// meta-paths.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A type name or abbreviation was registered twice.
    DuplicateType(String),
    /// A relation name was registered twice.
    DuplicateRelation(String),
    /// Lookup by name failed.
    UnknownType(String),
    /// Lookup by abbreviation failed.
    UnknownAbbrev(char),
    /// Lookup by name failed.
    UnknownRelation(String),
    /// A `TypeId`/`RelId` does not belong to this schema.
    InvalidId(String),
    /// An edge's endpoint type does not match the relation's signature.
    TypeMismatch {
        /// Relation being populated.
        rel: RelId,
        /// Expected endpoint type.
        expected: TypeId,
        /// Provided endpoint type.
        got: TypeId,
    },
    /// More than one relation connects two consecutive path types, so the
    /// compact type-sequence notation is ambiguous.
    AmbiguousStep {
        /// Source type of the step.
        from: TypeId,
        /// Target type of the step.
        to: TypeId,
    },
    /// No relation (in either direction) connects two consecutive types.
    NoStep {
        /// Source type of the step.
        from: TypeId,
        /// Target type of the step.
        to: TypeId,
    },
    /// A meta-path string or step sequence is malformed.
    InvalidPath(String),
    /// Two paths cannot be concatenated (end/start types differ).
    NotConcatenable,
    /// Propagated linear-algebra error.
    Sparse(SparseError),
    /// Propagated I/O error (stringified to keep the error `Clone + Eq`-ish).
    Io(String),
    /// A persisted network file is malformed.
    Format(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateType(n) => write!(f, "duplicate type {n:?}"),
            GraphError::DuplicateRelation(n) => write!(f, "duplicate relation {n:?}"),
            GraphError::UnknownType(n) => write!(f, "unknown type {n:?}"),
            GraphError::UnknownAbbrev(c) => write!(f, "unknown type abbreviation {c:?}"),
            GraphError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
            GraphError::InvalidId(what) => write!(f, "id not valid for this schema: {what}"),
            GraphError::TypeMismatch { rel, expected, got } => write!(
                f,
                "edge endpoint type mismatch on relation #{}: expected type #{}, got #{}",
                rel.index(),
                expected.index(),
                got.index()
            ),
            GraphError::AmbiguousStep { from, to } => write!(
                f,
                "more than one relation connects type #{} and type #{}; \
                 use explicit relation steps instead of type-sequence notation",
                from.index(),
                to.index()
            ),
            GraphError::NoStep { from, to } => write!(
                f,
                "no relation connects type #{} and type #{}",
                from.index(),
                to.index()
            ),
            GraphError::InvalidPath(msg) => write!(f, "invalid meta-path: {msg}"),
            GraphError::NotConcatenable => {
                write!(f, "paths are not concatenable (end type != start type)")
            }
            GraphError::Sparse(e) => write!(f, "linear algebra error: {e}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::Format(msg) => write!(f, "malformed network file: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<SparseError> for GraphError {
    fn from(e: SparseError) -> Self {
        GraphError::Sparse(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_mention_payload() {
        assert!(GraphError::UnknownType("author".into())
            .to_string()
            .contains("author"));
        assert!(GraphError::UnknownAbbrev('Q').to_string().contains('Q'));
        assert!(GraphError::InvalidPath("empty".into())
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn sparse_error_converts() {
        let e: GraphError = SparseError::EmptyChain.into();
        assert!(matches!(e, GraphError::Sparse(_)));
    }
}
