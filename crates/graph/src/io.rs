//! Plain-text persistence for heterogeneous networks.
//!
//! A network is stored as a directory of three tab-separated files — the
//! format is deliberately trivial so that synthetic datasets can be
//! inspected, diffed, and loaded without any binary tooling:
//!
//! * `schema.tsv` — `type <name> <abbrev>` and `relation <name> <src> <dst>`
//!   records, in registration order;
//! * `nodes.tsv` — `type_name \t node_name` per node, in index order;
//! * `edges.tsv` — `relation_name \t src_name \t dst_name \t weight`.
//!
//! Round-tripping preserves node indices (registration order is index
//! order), so persisted relevance matrices stay aligned.

use crate::{GraphError, Hin, HinBuilder, Result, Schema};
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a network into `dir` (created if missing).
pub fn save(hin: &Hin, dir: &Path) -> Result<()> {
    let _span = hetesim_obs::span!(
        "graph.io.save",
        nodes = hin.total_nodes(),
        edges = hin.total_edges(),
    );
    fs::create_dir_all(dir)?;
    let schema = hin.schema();

    let mut w = BufWriter::new(fs::File::create(dir.join("schema.tsv"))?);
    for ty in schema.type_ids() {
        writeln!(
            w,
            "type\t{}\t{}",
            schema.type_name(ty),
            schema.type_abbrev(ty)
        )?;
    }
    for rel in schema.relation_ids() {
        writeln!(
            w,
            "relation\t{}\t{}\t{}",
            schema.relation_name(rel),
            schema.type_name(schema.relation_src(rel)),
            schema.type_name(schema.relation_dst(rel)),
        )?;
    }
    w.flush()?;

    let mut w = BufWriter::new(fs::File::create(dir.join("nodes.tsv"))?);
    for ty in schema.type_ids() {
        for name in hin.node_names(ty) {
            writeln!(w, "{}\t{}", schema.type_name(ty), name)?;
        }
    }
    w.flush()?;

    let mut w = BufWriter::new(fs::File::create(dir.join("edges.tsv"))?);
    for rel in schema.relation_ids() {
        let adj = hin.adjacency(rel);
        let sty = schema.relation_src(rel);
        let dty = schema.relation_dst(rel);
        for (r, c, v) in adj.iter() {
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                schema.relation_name(rel),
                hin.node_name(sty, r as u32),
                hin.node_name(dty, c as u32),
                v
            )?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a network previously written by [`save`].
pub fn load(dir: &Path) -> Result<Hin> {
    let _span = hetesim_obs::span("graph.io.load");
    let mut schema = Schema::new();
    let schema_file = fs::File::open(dir.join("schema.tsv"))?;
    for (lineno, line) in BufReader::new(schema_file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["type", name, abbrev] => {
                let c = abbrev.chars().next().ok_or_else(|| {
                    GraphError::Format(format!("schema.tsv:{}: empty abbrev", lineno + 1))
                })?;
                schema.add_type_with_abbrev(name, c)?;
            }
            ["relation", name, src, dst] => {
                let s = schema.type_id(src)?;
                let d = schema.type_id(dst)?;
                schema.add_relation(name, s, d)?;
            }
            _ => {
                return Err(GraphError::Format(format!(
                    "schema.tsv:{}: unrecognized record {line:?}",
                    lineno + 1
                )))
            }
        }
    }

    let mut builder = HinBuilder::new(schema);
    let nodes_file = fs::File::open(dir.join("nodes.tsv"))?;
    for (lineno, line) in BufReader::new(nodes_file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.splitn(2, '\t');
        let (ty_name, node_name) = match (it.next(), it.next()) {
            (Some(t), Some(n)) => (t, n),
            _ => {
                return Err(GraphError::Format(format!(
                    "nodes.tsv:{}: expected 2 fields",
                    lineno + 1
                )))
            }
        };
        let ty = builder.schema().type_id(ty_name)?;
        builder.add_node(ty, node_name);
    }

    let edges_file = fs::File::open(dir.join("edges.tsv"))?;
    for (lineno, line) in BufReader::new(edges_file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let [rel_name, src, dst, weight] = fields.as_slice() else {
            return Err(GraphError::Format(format!(
                "edges.tsv:{}: expected 4 fields",
                lineno + 1
            )));
        };
        let rel = builder.schema().relation_id(rel_name)?;
        let w: f64 = weight.parse().map_err(|_| {
            GraphError::Format(format!("edges.tsv:{}: bad weight {weight:?}", lineno + 1))
        })?;
        builder.add_edge_by_name(rel, src, dst, w)?;
    }
    let hin = builder.build();
    hetesim_obs::add("graph.io.load.nodes", hin.total_nodes() as u64);
    hetesim_obs::add("graph.io.load.edges", hin.total_edges() as u64);
    Ok(hin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaPath, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 2.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let hin = toy();
        let dir = std::env::temp_dir().join(format!("hetesim-io-{}", std::process::id()));
        save(&hin, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();

        assert_eq!(loaded.total_nodes(), hin.total_nodes());
        assert_eq!(loaded.total_edges(), hin.total_edges());
        let a = loaded.schema().type_id("author").unwrap();
        assert_eq!(loaded.node_id(a, "Tom").unwrap(), 0);
        let w = loaded.schema().relation_id("writes").unwrap();
        assert_eq!(loaded.adjacency(w).get(1, 1), 2.0);
        // Meta-paths parse identically on the loaded schema.
        assert!(MetaPath::parse(loaded.schema(), "APC").is_ok());
    }

    #[test]
    fn loading_missing_dir_fails() {
        let err = load(Path::new("/nonexistent/hetesim-io")).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn malformed_schema_line_reports_location() {
        let dir = std::env::temp_dir().join(format!("hetesim-io-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("schema.tsv"), "bogus\trecord\n").unwrap();
        fs::write(dir.join("nodes.tsv"), "").unwrap();
        fs::write(dir.join("edges.tsv"), "").unwrap();
        let err = load(&dir).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, GraphError::Format(msg) if msg.contains("schema.tsv:1")));
    }
}
