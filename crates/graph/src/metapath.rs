use crate::{GraphError, RelId, Result, Schema, TypeId};

/// Traversal direction of one meta-path step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Traverse the relation from its source type to its target type.
    Forward,
    /// Traverse the inverse relation `R⁻¹` (target type to source type).
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// One step of a meta-path: a relation plus the direction it is traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// The schema relation being traversed.
    pub rel: RelId,
    /// Whether the relation is followed forwards or backwards.
    pub dir: Direction,
}

impl Step {
    /// A forward step over `rel`.
    pub fn forward(rel: RelId) -> Step {
        Step {
            rel,
            dir: Direction::Forward,
        }
    }

    /// A backward (inverse-relation) step over `rel`.
    pub fn backward(rel: RelId) -> Step {
        Step {
            rel,
            dir: Direction::Backward,
        }
    }

    /// Type this step departs from.
    pub fn from_type(&self, schema: &Schema) -> TypeId {
        match self.dir {
            Direction::Forward => schema.relation_src(self.rel),
            Direction::Backward => schema.relation_dst(self.rel),
        }
    }

    /// Type this step arrives at.
    pub fn to_type(&self, schema: &Schema) -> TypeId {
        match self.dir {
            Direction::Forward => schema.relation_dst(self.rel),
            Direction::Backward => schema.relation_src(self.rel),
        }
    }

    /// The same relation traversed the other way.
    pub fn reversed(self) -> Step {
        Step {
            rel: self.rel,
            dir: self.dir.flipped(),
        }
    }
}

/// A relevance path (Definition 2): a composite relation
/// `A1 → A2 → … → A(l+1)` expressed as a chain of directed relation steps.
///
/// The paper writes paths as type sequences (`APVC`) when at most one
/// relation connects each consecutive type pair; [`MetaPath::parse`]
/// implements exactly that notation, resolving each consecutive pair to the
/// unique forward or backward relation and reporting ambiguity otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetaPath {
    steps: Vec<Step>,
    /// Type sequence; `types.len() == steps.len() + 1`.
    types: Vec<TypeId>,
}

impl MetaPath {
    /// Builds a path from explicit steps, validating that consecutive steps
    /// chain (each step departs from the type the previous one arrived at).
    pub fn from_steps(schema: &Schema, steps: Vec<Step>) -> Result<MetaPath> {
        if steps.is_empty() {
            return Err(GraphError::InvalidPath("a path needs >= 1 step".into()));
        }
        for s in &steps {
            schema.check_relation(s.rel)?;
        }
        let mut types = Vec::with_capacity(steps.len() + 1);
        types.push(steps[0].from_type(schema));
        for (i, s) in steps.iter().enumerate() {
            let from = s.from_type(schema);
            if from != *types.last().expect("non-empty") {
                return Err(GraphError::InvalidPath(format!(
                    "step {i} departs from type {:?} but previous step arrived at {:?}",
                    schema.type_name(from),
                    schema.type_name(*types.last().unwrap()),
                )));
            }
            types.push(s.to_type(schema));
        }
        Ok(MetaPath { steps, types })
    }

    /// Parses the compact type-sequence notation: `"APVC"`, `"A-P-V-C"`,
    /// or full type names separated by dashes (`"author-paper"`).
    ///
    /// Each consecutive type pair must be connected by exactly one schema
    /// relation (in either direction); otherwise the notation is ambiguous
    /// and [`GraphError::AmbiguousStep`] is returned — use
    /// [`MetaPath::from_steps`] with explicit relations in that case.
    pub fn parse(schema: &Schema, text: &str) -> Result<MetaPath> {
        let types = Self::parse_type_sequence(schema, text)?;
        if types.len() < 2 {
            return Err(GraphError::InvalidPath(format!(
                "path {text:?} must name at least two types"
            )));
        }
        let mut steps = Vec::with_capacity(types.len() - 1);
        for w in types.windows(2) {
            steps.push(Self::step_between(schema, w[0], w[1])?);
        }
        MetaPath::from_steps(schema, steps)
    }

    fn parse_type_sequence(schema: &Schema, text: &str) -> Result<Vec<TypeId>> {
        let text = text.trim();
        if text.contains('-') {
            text.split('-')
                .map(|tok| {
                    let tok = tok.trim();
                    let mut chars = tok.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), None) => schema.type_by_abbrev(c),
                        _ => schema.type_id(tok),
                    }
                })
                .collect()
        } else {
            text.chars().map(|c| schema.type_by_abbrev(c)).collect()
        }
    }

    /// Resolves the unique step between two types, preferring nothing:
    /// exactly one candidate must exist among forward and backward
    /// traversals of the relations touching the pair.
    pub fn step_between(schema: &Schema, from: TypeId, to: TypeId) -> Result<Step> {
        let mut candidates = Vec::new();
        for &rel in schema.relations_between(from, to) {
            if schema.relation_src(rel) == from && schema.relation_dst(rel) == to {
                candidates.push(Step::forward(rel));
            }
            if schema.relation_src(rel) == to && schema.relation_dst(rel) == from {
                candidates.push(Step::backward(rel));
            }
        }
        match candidates.len() {
            0 => Err(GraphError::NoStep { from, to }),
            1 => Ok(candidates[0]),
            _ => Err(GraphError::AmbiguousStep { from, to }),
        }
    }

    /// Number of steps (the path length `l` of Definition 2).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Paths are never empty; provided for clippy-compliant symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The visited type sequence `A1 … A(l+1)`.
    pub fn type_sequence(&self) -> &[TypeId] {
        &self.types
    }

    /// First type (`A1`; the source side of relevance queries).
    pub fn source_type(&self) -> TypeId {
        self.types[0]
    }

    /// Last type (`A(l+1)`; the target side of relevance queries).
    pub fn target_type(&self) -> TypeId {
        *self.types.last().expect("non-empty")
    }

    /// The reverse path `P⁻¹`: steps reversed with flipped directions.
    pub fn reversed(&self) -> MetaPath {
        let steps: Vec<Step> = self.steps.iter().rev().map(|s| s.reversed()).collect();
        let types: Vec<TypeId> = self.types.iter().rev().copied().collect();
        MetaPath { steps, types }
    }

    /// True when `P == P⁻¹` — the symmetric-path condition under which
    /// PathSim is defined and under which `HeteSim(a, a | P) = 1`.
    pub fn is_symmetric(&self) -> bool {
        *self == self.reversed()
    }

    /// Concatenates `self` with `other` (Definition 2's concatenable
    /// paths); fails unless `self` ends at the type `other` starts from.
    pub fn concat(&self, other: &MetaPath) -> Result<MetaPath> {
        if self.target_type() != other.source_type() {
            return Err(GraphError::NotConcatenable);
        }
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        let mut types = self.types.clone();
        types.extend_from_slice(&other.types[1..]);
        Ok(MetaPath { steps, types })
    }

    /// Renders the path in dashed abbreviation form, e.g. `"A-P-V-C"`.
    pub fn display(&self, schema: &Schema) -> String {
        let mut s = String::new();
        for (i, ty) in self.types.iter().enumerate() {
            if i > 0 {
                s.push('-');
            }
            s.push(schema.type_abbrev(*ty));
        }
        s
    }

    /// A stable cache key uniquely identifying the step sequence (unlike
    /// [`MetaPath::display`], which collapses parallel relations).
    pub fn cache_key(&self) -> String {
        let mut s = String::new();
        for step in &self.steps {
            s.push(match step.dir {
                Direction::Forward => '+',
                Direction::Backward => '-',
            });
            s.push_str(&step.rel.index().to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn acm_like_schema() -> Schema {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let v = s.add_type("venue").unwrap();
        let c = s.add_type("conference").unwrap();
        let t = s.add_type("term").unwrap();
        s.add_relation("writes", a, p).unwrap();
        s.add_relation("published_in", p, v).unwrap();
        s.add_relation("part_of", v, c).unwrap();
        s.add_relation("has_term", p, t).unwrap();
        s
    }

    #[test]
    fn parse_compact_and_dashed() {
        let s = acm_like_schema();
        let p1 = MetaPath::parse(&s, "APVC").unwrap();
        let p2 = MetaPath::parse(&s, "A-P-V-C").unwrap();
        let p3 = MetaPath::parse(&s, "author-paper-venue-conference").unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1, p3);
        assert_eq!(p1.len(), 3);
        assert_eq!(p1.display(&s), "A-P-V-C");
    }

    #[test]
    fn parse_resolves_directions() {
        let s = acm_like_schema();
        let cvpa = MetaPath::parse(&s, "CVPA").unwrap();
        // C→V is backward over part_of, V→P backward over published_in,
        // P→A backward over writes.
        assert!(cvpa.steps().iter().all(|st| st.dir == Direction::Backward));
        let apvc = MetaPath::parse(&s, "APVC").unwrap();
        assert!(apvc.steps().iter().all(|st| st.dir == Direction::Forward));
    }

    #[test]
    fn reverse_of_parse_is_parse_of_reverse() {
        let s = acm_like_schema();
        let apvc = MetaPath::parse(&s, "APVC").unwrap();
        let cvpa = MetaPath::parse(&s, "CVPA").unwrap();
        assert_eq!(apvc.reversed(), cvpa);
        assert_eq!(cvpa.reversed(), apvc);
    }

    #[test]
    fn symmetry_detection() {
        let s = acm_like_schema();
        assert!(MetaPath::parse(&s, "APA").unwrap().is_symmetric());
        assert!(MetaPath::parse(&s, "APVCVPA").unwrap().is_symmetric());
        assert!(!MetaPath::parse(&s, "APVC").unwrap().is_symmetric());
        assert!(!MetaPath::parse(&s, "APT").unwrap().is_symmetric());
    }

    #[test]
    fn concat_checks_types() {
        let s = acm_like_schema();
        let ap = MetaPath::parse(&s, "AP").unwrap();
        let pv = MetaPath::parse(&s, "PV").unwrap();
        let apv = ap.concat(&pv).unwrap();
        assert_eq!(apv, MetaPath::parse(&s, "APV").unwrap());
        assert!(matches!(pv.concat(&pv), Err(GraphError::NotConcatenable)));
    }

    #[test]
    fn unknown_abbrev_is_error() {
        let s = acm_like_schema();
        assert!(matches!(
            MetaPath::parse(&s, "APX"),
            Err(GraphError::UnknownAbbrev('X'))
        ));
    }

    #[test]
    fn no_step_between_disconnected_types() {
        let s = acm_like_schema();
        assert!(matches!(
            MetaPath::parse(&s, "AC"),
            Err(GraphError::NoStep { .. })
        ));
    }

    #[test]
    fn ambiguous_pair_is_rejected() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        s.add_relation("writes", a, p).unwrap();
        s.add_relation("reviews", a, p).unwrap();
        assert!(matches!(
            MetaPath::parse(&s, "AP"),
            Err(GraphError::AmbiguousStep { .. })
        ));
        // Explicit steps still work.
        let w = s.relation_id("writes").unwrap();
        let path = MetaPath::from_steps(&s, vec![Step::forward(w)]).unwrap();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn from_steps_rejects_broken_chain() {
        let s = acm_like_schema();
        let w = s.relation_id("writes").unwrap();
        let t = s.relation_id("has_term").unwrap();
        // writes: A→P then has_term backward: T→P — does not chain.
        assert!(MetaPath::from_steps(&s, vec![Step::forward(w), Step::backward(t)]).is_err());
        assert!(MetaPath::from_steps(&s, vec![]).is_err());
    }

    #[test]
    fn single_step_path_too_short_to_parse_one_type() {
        let s = acm_like_schema();
        assert!(MetaPath::parse(&s, "A").is_err());
        assert!(MetaPath::parse(&s, "").is_err());
    }

    #[test]
    fn cache_key_distinguishes_direction() {
        let s = acm_like_schema();
        let ap = MetaPath::parse(&s, "AP").unwrap();
        let pa = MetaPath::parse(&s, "PA").unwrap();
        assert_ne!(ap.cache_key(), pa.cache_key());
    }

    #[test]
    fn self_relation_path() {
        let mut s = Schema::new();
        let u = s.add_type("user").unwrap();
        let f = s.add_relation("follows", u, u).unwrap();
        // u-u is ambiguous through type notation (forward and backward both
        // exist), so explicit steps are required.
        assert!(matches!(
            MetaPath::parse(&s, "UU"),
            Err(GraphError::AmbiguousStep { .. })
        ));
        let p = MetaPath::from_steps(&s, vec![Step::forward(f), Step::backward(f)]).unwrap();
        assert!(p.is_symmetric());
    }
}
