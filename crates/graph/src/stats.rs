//! Summary statistics of a heterogeneous network.
//!
//! Used by the dataset generators to verify that the synthetic ACM/DBLP
//! networks match the entity counts reported in Section 5.1 of the paper,
//! and by the benchmark harness to print dataset headers.

use crate::Hin;
use std::fmt;

/// Per-type node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeStat {
    /// Type name.
    pub name: String,
    /// Abbreviation character.
    pub abbrev: char,
    /// Number of nodes of this type.
    pub count: usize,
}

/// Per-relation edge statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStat {
    /// Relation name.
    pub name: String,
    /// Source type name.
    pub src: String,
    /// Target type name.
    pub dst: String,
    /// Number of distinct stored edges.
    pub edges: usize,
    /// Mean out-degree over source nodes (0 when the source side is empty).
    pub avg_out_degree: f64,
    /// Fraction of source nodes with no out-edges.
    pub isolated_sources: f64,
}

/// A full statistical snapshot of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct HinStats {
    /// One entry per object type.
    pub types: Vec<TypeStat>,
    /// One entry per relation.
    pub relations: Vec<RelationStat>,
    /// Total nodes across all types.
    pub total_nodes: usize,
    /// Total edges across all relations.
    pub total_edges: usize,
}

/// Computes the snapshot.
pub fn stats(hin: &Hin) -> HinStats {
    let schema = hin.schema();
    let types = schema
        .type_ids()
        .map(|ty| TypeStat {
            name: schema.type_name(ty).to_string(),
            abbrev: schema.type_abbrev(ty),
            count: hin.node_count(ty),
        })
        .collect();
    let relations = schema
        .relation_ids()
        .map(|rel| {
            let adj = hin.adjacency(rel);
            let n = adj.nrows();
            let isolated = (0..n).filter(|&r| adj.row_nnz(r) == 0).count();
            RelationStat {
                name: schema.relation_name(rel).to_string(),
                src: schema.type_name(schema.relation_src(rel)).to_string(),
                dst: schema.type_name(schema.relation_dst(rel)).to_string(),
                edges: adj.nnz(),
                avg_out_degree: if n == 0 {
                    0.0
                } else {
                    adj.nnz() as f64 / n as f64
                },
                isolated_sources: if n == 0 {
                    0.0
                } else {
                    isolated as f64 / n as f64
                },
            }
        })
        .collect();
    HinStats {
        types,
        relations,
        total_nodes: hin.total_nodes(),
        total_edges: hin.total_edges(),
    }
}

impl fmt::Display for HinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "network: {} nodes, {} edges",
            self.total_nodes, self.total_edges
        )?;
        for t in &self.types {
            writeln!(
                f,
                "  type {:>2} {:<14} {:>8} nodes",
                t.abbrev, t.name, t.count
            )?;
        }
        for r in &self.relations {
            writeln!(
                f,
                "  rel  {:<20} {:>10} -> {:<12} {:>8} edges (avg out-deg {:.2}, {:.1}% isolated)",
                r.name,
                r.src,
                r.dst,
                r.edges,
                r.avg_out_degree,
                r.isolated_sources * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HinBuilder, Schema};

    #[test]
    fn stats_of_small_network() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_node(a, "Idle");
        let hin = b.build();
        let st = stats(&hin);
        assert_eq!(st.total_nodes, 4);
        assert_eq!(st.total_edges, 2);
        assert_eq!(st.types[0].count, 2);
        let rel = &st.relations[0];
        assert_eq!(rel.edges, 2);
        assert!((rel.avg_out_degree - 1.0).abs() < 1e-12);
        assert!((rel.isolated_sources - 0.5).abs() < 1e-12);
        let rendered = st.to_string();
        assert!(rendered.contains("writes"));
        assert!(rendered.contains("author"));
    }
}
