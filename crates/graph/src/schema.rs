use crate::{GraphError, Result};
use std::collections::HashMap;

/// Identifier of an object type within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u16);

impl TypeId {
    /// Positional index of the type within its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a relation within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u16);

impl RelId {
    /// Positional index of the relation within its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct TypeDef {
    name: String,
    abbrev: char,
}

#[derive(Debug, Clone)]
struct RelDef {
    name: String,
    src: TypeId,
    dst: TypeId,
}

/// A network schema `S = (A, R)` (Definition 1): object types plus directed
/// relations between them.
///
/// Each type carries a single-character abbreviation (defaulting to the
/// upper-cased first letter of its name) so that meta-paths can be written
/// in the compact notation used throughout the paper: `"APVC"` for
/// Author–Paper–Venue–Conference.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    types: Vec<TypeDef>,
    relations: Vec<RelDef>,
    by_type_name: HashMap<String, TypeId>,
    by_abbrev: HashMap<char, TypeId>,
    by_rel_name: HashMap<String, RelId>,
    /// For each unordered type pair, the relations connecting them (used by
    /// compact path parsing).
    between: HashMap<(TypeId, TypeId), Vec<RelId>>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Registers a type, deriving the abbreviation from the upper-cased
    /// first character of `name`.
    pub fn add_type(&mut self, name: &str) -> Result<TypeId> {
        let abbrev = name
            .chars()
            .next()
            .ok_or_else(|| GraphError::DuplicateType("<empty>".into()))?
            .to_ascii_uppercase();
        self.add_type_with_abbrev(name, abbrev)
    }

    /// Registers a type with an explicit abbreviation character. Both the
    /// name and the abbreviation must be unique within the schema.
    pub fn add_type_with_abbrev(&mut self, name: &str, abbrev: char) -> Result<TypeId> {
        if self.by_type_name.contains_key(name) {
            return Err(GraphError::DuplicateType(name.to_string()));
        }
        if self.by_abbrev.contains_key(&abbrev) {
            return Err(GraphError::DuplicateType(format!(
                "{name} (abbreviation {abbrev:?} already taken)"
            )));
        }
        let id = TypeId(u16::try_from(self.types.len()).expect("too many types"));
        self.types.push(TypeDef {
            name: name.to_string(),
            abbrev,
        });
        self.by_type_name.insert(name.to_string(), id);
        self.by_abbrev.insert(abbrev, id);
        Ok(id)
    }

    /// Registers a directed relation `src → dst`.
    pub fn add_relation(&mut self, name: &str, src: TypeId, dst: TypeId) -> Result<RelId> {
        if self.by_rel_name.contains_key(name) {
            return Err(GraphError::DuplicateRelation(name.to_string()));
        }
        self.check_type(src)?;
        self.check_type(dst)?;
        let id = RelId(u16::try_from(self.relations.len()).expect("too many relations"));
        self.relations.push(RelDef {
            name: name.to_string(),
            src,
            dst,
        });
        self.by_rel_name.insert(name.to_string(), id);
        self.between.entry((src, dst)).or_default().push(id);
        if src != dst {
            self.between.entry((dst, src)).or_default().push(id);
        }
        Ok(id)
    }

    fn check_type(&self, ty: TypeId) -> Result<()> {
        if ty.index() < self.types.len() {
            Ok(())
        } else {
            Err(GraphError::InvalidId(format!("type #{}", ty.index())))
        }
    }

    /// Validates a relation id against this schema.
    pub fn check_relation(&self, rel: RelId) -> Result<()> {
        if rel.index() < self.relations.len() {
            Ok(())
        } else {
            Err(GraphError::InvalidId(format!("relation #{}", rel.index())))
        }
    }

    /// Number of registered types (`|A|`).
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of registered relations (`|R|`).
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// True when the schema is heterogeneous per Definition 1
    /// (`|A| > 1 || |R| > 1`).
    pub fn is_heterogeneous(&self) -> bool {
        self.type_count() > 1 || self.relation_count() > 1
    }

    /// Name of a type.
    pub fn type_name(&self, ty: TypeId) -> &str {
        &self.types[ty.index()].name
    }

    /// Abbreviation character of a type.
    pub fn type_abbrev(&self, ty: TypeId) -> char {
        self.types[ty.index()].abbrev
    }

    /// Looks up a type by name.
    pub fn type_id(&self, name: &str) -> Result<TypeId> {
        self.by_type_name
            .get(name)
            .copied()
            .ok_or_else(|| GraphError::UnknownType(name.to_string()))
    }

    /// Looks up a type by abbreviation character.
    pub fn type_by_abbrev(&self, abbrev: char) -> Result<TypeId> {
        self.by_abbrev
            .get(&abbrev)
            .copied()
            .ok_or(GraphError::UnknownAbbrev(abbrev))
    }

    /// All type ids in registration order.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len()).map(|i| TypeId(i as u16))
    }

    /// Name of a relation.
    pub fn relation_name(&self, rel: RelId) -> &str {
        &self.relations[rel.index()].name
    }

    /// Source type of a relation (`R.S` in the paper).
    pub fn relation_src(&self, rel: RelId) -> TypeId {
        self.relations[rel.index()].src
    }

    /// Target type of a relation (`R.T` in the paper).
    pub fn relation_dst(&self, rel: RelId) -> TypeId {
        self.relations[rel.index()].dst
    }

    /// Looks up a relation by name.
    pub fn relation_id(&self, name: &str) -> Result<RelId> {
        self.by_rel_name
            .get(name)
            .copied()
            .ok_or_else(|| GraphError::UnknownRelation(name.to_string()))
    }

    /// All relation ids in registration order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len()).map(|i| RelId(i as u16))
    }

    /// Relations touching the (ordered) pair of types in either direction.
    pub fn relations_between(&self, a: TypeId, b: TypeId) -> &[RelId] {
        self.between.get(&(a, b)).map_or(&[], |v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib_schema() -> Schema {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        s.add_relation("writes", a, p).unwrap();
        s.add_relation("published_in", p, c).unwrap();
        s
    }

    #[test]
    fn lookup_by_name_and_abbrev() {
        let s = bib_schema();
        let a = s.type_id("author").unwrap();
        assert_eq!(s.type_abbrev(a), 'A');
        assert_eq!(s.type_by_abbrev('A').unwrap(), a);
        assert_eq!(s.type_name(a), "author");
        assert!(s.type_id("venue").is_err());
        assert!(s.type_by_abbrev('V').is_err());
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut s = bib_schema();
        assert!(matches!(
            s.add_type("author"),
            Err(GraphError::DuplicateType(_))
        ));
        // Abbreviation collision: "affiliation" also starts with 'a'.
        assert!(s.add_type("affiliation").is_err());
        assert!(s.add_type_with_abbrev("affiliation", 'F').is_ok());
    }

    #[test]
    fn relation_endpoints() {
        let s = bib_schema();
        let w = s.relation_id("writes").unwrap();
        assert_eq!(s.relation_src(w), s.type_id("author").unwrap());
        assert_eq!(s.relation_dst(w), s.type_id("paper").unwrap());
        assert_eq!(s.relation_name(w), "writes");
        assert!(s.relation_id("cites").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = bib_schema();
        let a = s.type_id("author").unwrap();
        let p = s.type_id("paper").unwrap();
        assert!(matches!(
            s.add_relation("writes", a, p),
            Err(GraphError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn relations_between_is_direction_agnostic() {
        let s = bib_schema();
        let a = s.type_id("author").unwrap();
        let p = s.type_id("paper").unwrap();
        let w = s.relation_id("writes").unwrap();
        assert_eq!(s.relations_between(a, p), &[w]);
        assert_eq!(s.relations_between(p, a), &[w]);
        let c = s.type_id("conference").unwrap();
        assert!(s.relations_between(a, c).is_empty());
    }

    #[test]
    fn heterogeneity_per_definition_1() {
        let mut s = Schema::new();
        assert!(!s.is_heterogeneous());
        let u = s.add_type("user").unwrap();
        s.add_relation("follows", u, u).unwrap();
        assert!(!s.is_heterogeneous()); // 1 type, 1 relation: homogeneous
        s.add_relation("blocks", u, u).unwrap();
        assert!(s.is_heterogeneous()); // 2 relation types
    }

    #[test]
    fn counts_and_iterators() {
        let s = bib_schema();
        assert_eq!(s.type_count(), 3);
        assert_eq!(s.relation_count(), 2);
        assert_eq!(s.type_ids().count(), 3);
        assert_eq!(s.relation_ids().count(), 2);
    }

    #[test]
    fn self_relation_registered_once_in_between() {
        let mut s = Schema::new();
        let u = s.add_type("user").unwrap();
        let f = s.add_relation("follows", u, u).unwrap();
        assert_eq!(s.relations_between(u, u), &[f]);
    }
}
