use crate::hash::NameMap;
use crate::{Direction, GraphError, RelId, Result, Schema, Step, TypeId};
use hetesim_sparse::{CooMatrix, CsrMatrix};

/// A typed reference to one node: its type plus its index within that
/// type's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// Object type.
    pub ty: TypeId,
    /// Index within the per-type registry.
    pub idx: u32,
}

impl NodeRef {
    /// Convenience constructor.
    pub fn new(ty: TypeId, idx: u32) -> NodeRef {
        NodeRef { ty, idx }
    }
}

/// An immutable heterogeneous information network: per-type node registries
/// plus one adjacency matrix per schema relation (with cached transposes).
///
/// Built through [`HinBuilder`]; all query-side structures (`hetesim-core`,
/// the baselines) borrow a `Hin` immutably, so a single network can serve
/// concurrent measurements.
#[derive(Debug, Clone)]
pub struct Hin {
    schema: Schema,
    names: Vec<Vec<String>>,
    index: Vec<NameMap>,
    adj: Vec<CsrMatrix>,
    adj_t: Vec<CsrMatrix>,
}

impl Hin {
    /// Reassembles a network from pre-validated parts, the fast path used
    /// by snapshot loading: no COO round-trip, no parallel-edge merging —
    /// the adjacency matrices are installed as given and only the
    /// transposes and name indexes are recomputed (both deterministic, so
    /// a snapshotted network is bitwise-identical to its source).
    ///
    /// Validates that the parts are mutually consistent: one name registry
    /// per schema type, one adjacency per relation, each adjacency shaped
    /// `src_count x dst_count`, and no duplicate names within a type.
    pub fn from_parts(schema: Schema, names: Vec<Vec<String>>, adj: Vec<CsrMatrix>) -> Result<Hin> {
        if names.len() != schema.type_count() {
            return Err(GraphError::Format(format!(
                "{} name registries for {} types",
                names.len(),
                schema.type_count()
            )));
        }
        if adj.len() != schema.relation_count() {
            return Err(GraphError::Format(format!(
                "{} adjacency matrices for {} relations",
                adj.len(),
                schema.relation_count()
            )));
        }
        for (rel, m) in schema.relation_ids().zip(&adj) {
            let want = (
                names[schema.relation_src(rel).index()].len(),
                names[schema.relation_dst(rel).index()].len(),
            );
            if m.shape() != want {
                return Err(GraphError::Format(format!(
                    "relation {} adjacency is {}x{}, expected {}x{}",
                    schema.relation_name(rel),
                    m.nrows(),
                    m.ncols(),
                    want.0,
                    want.1
                )));
            }
        }
        let mut index = Vec::with_capacity(names.len());
        for (ti, per_type) in names.iter().enumerate() {
            let mut map = NameMap::with_capacity_and_hasher(per_type.len(), Default::default());
            for (i, name) in per_type.iter().enumerate() {
                let id = u32::try_from(i).map_err(|_| {
                    GraphError::Format(format!("type #{ti} has more than u32::MAX nodes"))
                })?;
                if map.insert(name.clone(), id).is_some() {
                    return Err(GraphError::Format(format!(
                        "duplicate node name {name:?} in type #{ti}"
                    )));
                }
            }
            index.push(map);
        }
        let adj_t: Vec<CsrMatrix> = adj.iter().map(CsrMatrix::transpose).collect();
        Ok(Hin {
            schema,
            names,
            index,
            adj,
            adj_t,
        })
    }

    /// The network's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes of the given type.
    pub fn node_count(&self, ty: TypeId) -> usize {
        self.names[ty.index()].len()
    }

    /// Total node count across all types.
    pub fn total_nodes(&self) -> usize {
        self.names.iter().map(Vec::len).sum()
    }

    /// Total stored edge count across all relations.
    pub fn total_edges(&self) -> usize {
        self.adj.iter().map(CsrMatrix::nnz).sum()
    }

    /// Name of node `idx` of type `ty`.
    pub fn node_name(&self, ty: TypeId, idx: u32) -> &str {
        &self.names[ty.index()][idx as usize]
    }

    /// All node names of a type, in index order.
    pub fn node_names(&self, ty: TypeId) -> &[String] {
        &self.names[ty.index()]
    }

    /// Looks a node up by name.
    pub fn node_id(&self, ty: TypeId, name: &str) -> Result<u32> {
        self.index[ty.index()].get(name).copied().ok_or_else(|| {
            GraphError::UnknownType(format!(
                "node {name:?} of type {}",
                self.schema.type_name(ty)
            ))
        })
    }

    /// Typed reference lookup by name.
    pub fn node_ref(&self, ty: TypeId, name: &str) -> Result<NodeRef> {
        Ok(NodeRef::new(ty, self.node_id(ty, name)?))
    }

    /// Adjacency matrix of a relation (`src_count x dst_count`, weights as
    /// stored).
    pub fn adjacency(&self, rel: RelId) -> &CsrMatrix {
        &self.adj[rel.index()]
    }

    /// Cached transpose of a relation's adjacency.
    pub fn adjacency_t(&self, rel: RelId) -> &CsrMatrix {
        &self.adj_t[rel.index()]
    }

    /// Adjacency matrix in traversal orientation for a meta-path step:
    /// rows are the step's departure type, columns its arrival type.
    pub fn step_adjacency(&self, step: Step) -> &CsrMatrix {
        match step.dir {
            Direction::Forward => self.adjacency(step.rel),
            Direction::Backward => self.adjacency_t(step.rel),
        }
    }

    /// Row-stochastic transition matrix `U` for a step (Definition 8).
    /// Computed on demand; `hetesim-core` provides a memoizing cache.
    pub fn step_transition(&self, step: Step) -> CsrMatrix {
        self.step_adjacency(step).row_normalized()
    }

    /// Out-degree of a node under a relation (number of stored neighbors).
    pub fn out_degree(&self, rel: RelId, src: u32) -> usize {
        self.adjacency(rel).row_nnz(src as usize)
    }

    /// In-degree of a node under a relation.
    pub fn in_degree(&self, rel: RelId, dst: u32) -> usize {
        self.adjacency_t(rel).row_nnz(dst as usize)
    }

    /// Out-neighbors `O(s | R)` of a node under a relation.
    pub fn out_neighbors(&self, rel: RelId, src: u32) -> &[u32] {
        self.adjacency(rel).row_indices(src as usize)
    }

    /// In-neighbors `I(t | R)` of a node under a relation.
    pub fn in_neighbors(&self, rel: RelId, dst: u32) -> &[u32] {
        self.adjacency_t(rel).row_indices(dst as usize)
    }
}

#[derive(Debug, Clone)]
struct PendingEdge {
    rel: RelId,
    src: u32,
    dst: u32,
    weight: f64,
}

/// Incremental builder for [`Hin`].
///
/// Nodes can be registered explicitly ([`HinBuilder::add_node`]) or created
/// on first mention by [`HinBuilder::add_edge_by_name`] — the convenient
/// mode for ingesting edge lists. Parallel edges are summed into a single
/// weighted edge at build time.
#[derive(Debug, Clone)]
pub struct HinBuilder {
    schema: Schema,
    names: Vec<Vec<String>>,
    index: Vec<NameMap>,
    edges: Vec<PendingEdge>,
}

impl HinBuilder {
    /// Starts building a network over the given schema.
    pub fn new(schema: Schema) -> HinBuilder {
        let n = schema.type_count();
        HinBuilder {
            schema,
            names: vec![Vec::new(); n],
            index: vec![NameMap::default(); n],
            edges: Vec::new(),
        }
    }

    /// Re-opens an existing network for evolution: all node registries and
    /// edges are carried over (indices preserved), so callers can add
    /// nodes/edges and [`HinBuilder::build`] an updated snapshot. `Hin`
    /// itself stays immutable — engines borrow it — so evolution is
    /// copy-on-write at network granularity.
    pub fn from_hin(hin: &Hin) -> HinBuilder {
        let mut b = HinBuilder::new(hin.schema.clone());
        b.names = hin.names.clone();
        b.index = hin.index.clone();
        for rel in hin.schema.relation_ids() {
            for (src, dst, weight) in hin.adjacency(rel).iter() {
                b.edges.push(PendingEdge {
                    rel,
                    src: src as u32,
                    dst: dst as u32,
                    weight,
                });
            }
        }
        b
    }

    /// The schema being populated.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Registers (or finds) a node by name, returning its index.
    pub fn add_node(&mut self, ty: TypeId, name: &str) -> u32 {
        let ti = ty.index();
        if let Some(&id) = self.index[ti].get(name) {
            return id;
        }
        let id = u32::try_from(self.names[ti].len()).expect("too many nodes");
        self.names[ti].push(name.to_string());
        self.index[ti].insert(name.to_string(), id);
        id
    }

    /// Number of nodes currently registered for a type.
    pub fn node_count(&self, ty: TypeId) -> usize {
        self.names[ty.index()].len()
    }

    /// Adds a weighted edge by node indices. Endpoints must already exist.
    pub fn add_edge(&mut self, rel: RelId, src: u32, dst: u32, weight: f64) -> Result<()> {
        self.schema.check_relation(rel)?;
        let sty = self.schema.relation_src(rel);
        let dty = self.schema.relation_dst(rel);
        if (src as usize) >= self.names[sty.index()].len() {
            return Err(GraphError::InvalidId(format!(
                "source node #{src} of type {}",
                self.schema.type_name(sty)
            )));
        }
        if (dst as usize) >= self.names[dty.index()].len() {
            return Err(GraphError::InvalidId(format!(
                "target node #{dst} of type {}",
                self.schema.type_name(dty)
            )));
        }
        self.edges.push(PendingEdge {
            rel,
            src,
            dst,
            weight,
        });
        Ok(())
    }

    /// Adds a weighted edge by node names, creating endpoints on demand.
    pub fn add_edge_by_name(
        &mut self,
        rel: RelId,
        src: &str,
        dst: &str,
        weight: f64,
    ) -> Result<()> {
        self.schema.check_relation(rel)?;
        let sty = self.schema.relation_src(rel);
        let dty = self.schema.relation_dst(rel);
        let s = self.add_node(sty, src);
        let d = self.add_node(dty, dst);
        self.edges.push(PendingEdge {
            rel,
            src: s,
            dst: d,
            weight,
        });
        Ok(())
    }

    /// Finalizes into an immutable [`Hin`], assembling adjacency matrices
    /// and their transposes.
    pub fn build(self) -> Hin {
        let nrel = self.schema.relation_count();
        let mut coos: Vec<CooMatrix> = (0..nrel)
            .map(|r| {
                let rel = self
                    .schema
                    .relation_ids()
                    .nth(r)
                    .expect("relation index in range");
                CooMatrix::new(
                    self.names[self.schema.relation_src(rel).index()].len(),
                    self.names[self.schema.relation_dst(rel).index()].len(),
                )
            })
            .collect();
        for e in &self.edges {
            coos[e.rel.index()].push(e.src as usize, e.dst as usize, e.weight);
        }
        let adj: Vec<CsrMatrix> = coos.iter().map(CooMatrix::to_csr).collect();
        let adj_t: Vec<CsrMatrix> = adj.iter().map(CsrMatrix::transpose).collect();
        Hin {
            schema: self.schema,
            names: self.names,
            index: self.index,
            adj,
            adj_t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetaPath;

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn node_registry_roundtrip() {
        let hin = toy();
        let a = hin.schema().type_id("author").unwrap();
        assert_eq!(hin.node_count(a), 2);
        let tom = hin.node_id(a, "Tom").unwrap();
        assert_eq!(hin.node_name(a, tom), "Tom");
        assert!(hin.node_id(a, "Nobody").is_err());
        assert_eq!(hin.total_nodes(), 2 + 3 + 2);
        assert_eq!(hin.total_edges(), 7);
    }

    #[test]
    fn adjacency_shapes_and_degrees() {
        let hin = toy();
        let w = hin.schema().relation_id("writes").unwrap();
        assert_eq!(hin.adjacency(w).shape(), (2, 3));
        assert_eq!(hin.adjacency_t(w).shape(), (3, 2));
        let a = hin.schema().type_id("author").unwrap();
        let tom = hin.node_id(a, "Tom").unwrap();
        assert_eq!(hin.out_degree(w, tom), 2);
        let p = hin.schema().type_id("paper").unwrap();
        let p2 = hin.node_id(p, "P2").unwrap();
        assert_eq!(hin.in_degree(w, p2), 2);
        assert_eq!(hin.out_neighbors(w, tom).len(), 2);
        assert_eq!(hin.in_neighbors(w, p2).len(), 2);
    }

    #[test]
    fn step_transition_is_row_stochastic() {
        let hin = toy();
        let path = MetaPath::parse(hin.schema(), "A-P").unwrap();
        let u = hin.step_transition(path.steps()[0]);
        for r in 0..u.nrows() {
            let s: f64 = u.row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_step_uses_transpose() {
        let hin = toy();
        let path = MetaPath::parse(hin.schema(), "P-A").unwrap();
        let m = hin.step_adjacency(path.steps()[0]);
        assert_eq!(m.shape(), (3, 2));
    }

    #[test]
    fn duplicate_names_are_merged() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        let id1 = b.add_node(a, "Tom");
        let id2 = b.add_node(a, "Tom");
        assert_eq!(id1, id2);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        let hin = b.build();
        // Parallel edges summed into weight 2.
        assert_eq!(hin.adjacency(w).get(0, 0), 2.0);
        assert_eq!(hin.adjacency(w).nnz(), 1);
    }

    #[test]
    fn add_edge_by_index_requires_existing_nodes() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        assert!(b.add_edge(w, 0, 0, 1.0).is_err());
        let ai = b.add_node(a, "Tom");
        let pi = b.add_node(p, "P1");
        assert!(b.add_edge(w, ai, pi, 1.0).is_ok());
    }

    #[test]
    fn from_hin_preserves_and_extends() {
        let hin = toy();
        let a = hin.schema().type_id("author").unwrap();
        let w = hin.schema().relation_id("writes").unwrap();
        let tom = hin.node_id(a, "Tom").unwrap();

        let mut b = HinBuilder::from_hin(&hin);
        // Existing names keep their indices.
        assert_eq!(b.add_node(a, "Tom"), tom);
        b.add_edge_by_name(w, "Tom", "P3", 1.0).unwrap();
        let evolved = b.build();

        assert_eq!(evolved.total_edges(), hin.total_edges() + 1);
        assert_eq!(evolved.node_id(a, "Tom").unwrap(), tom);
        assert_eq!(evolved.out_degree(w, tom), hin.out_degree(w, tom) + 1);
        // The original is untouched.
        assert_eq!(hin.out_degree(w, tom), 2);
    }

    #[test]
    fn from_parts_matches_builder_output() {
        let hin = toy();
        let names: Vec<Vec<String>> = hin
            .schema()
            .type_ids()
            .map(|ty| hin.node_names(ty).to_vec())
            .collect();
        let adj: Vec<CsrMatrix> = hin
            .schema()
            .relation_ids()
            .map(|rel| hin.adjacency(rel).clone())
            .collect();
        let back = Hin::from_parts(hin.schema().clone(), names, adj).unwrap();
        assert_eq!(back.total_nodes(), hin.total_nodes());
        assert_eq!(back.total_edges(), hin.total_edges());
        let a = hin.schema().type_id("author").unwrap();
        let w = hin.schema().relation_id("writes").unwrap();
        assert_eq!(
            back.node_id(a, "Mary").unwrap(),
            hin.node_id(a, "Mary").unwrap()
        );
        assert_eq!(back.adjacency(w), hin.adjacency(w));
        assert_eq!(back.adjacency_t(w), hin.adjacency_t(w));
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let hin = toy();
        let names: Vec<Vec<String>> = hin
            .schema()
            .type_ids()
            .map(|ty| hin.node_names(ty).to_vec())
            .collect();
        let adj: Vec<CsrMatrix> = hin
            .schema()
            .relation_ids()
            .map(|rel| hin.adjacency(rel).clone())
            .collect();

        // Wrong registry count.
        assert!(Hin::from_parts(hin.schema().clone(), names[..2].to_vec(), adj.clone()).is_err());
        // Wrong adjacency count.
        assert!(Hin::from_parts(hin.schema().clone(), names.clone(), adj[..1].to_vec()).is_err());
        // Shape mismatch: swap the two relations' matrices.
        let swapped = vec![adj[1].clone(), adj[0].clone()];
        assert!(Hin::from_parts(hin.schema().clone(), names.clone(), swapped).is_err());
        // Duplicate node name within a type.
        let mut dup = names.clone();
        dup[0][1] = dup[0][0].clone();
        assert!(Hin::from_parts(hin.schema().clone(), dup, adj).is_err());
    }

    #[test]
    fn empty_network_builds() {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        s.add_relation("writes", a, p).unwrap();
        let hin = HinBuilder::new(s).build();
        assert_eq!(hin.total_nodes(), 0);
        assert_eq!(hin.total_edges(), 0);
    }
}
