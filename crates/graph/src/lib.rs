#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Heterogeneous information network (HIN) storage, schema, and meta-path
//! machinery.
//!
//! This crate implements Definitions 1 and 2 of Shi et al. (EDBT 2012):
//!
//! * [`Schema`] — the network template: a set of object *types* and a set of
//!   directed *relations* between types (Definition 1's `S = (A, R)`).
//! * [`Hin`] — a concrete network instance: per-type node registries and one
//!   sparse adjacency matrix per relation, with transposes cached so that a
//!   relation can be traversed in either direction at no extra cost.
//! * [`MetaPath`] — a *relevance path* (Definition 2): a chainable sequence
//!   of relation traversals, each forward (`A → B` along `R`) or backward
//!   (`B → A` along `R⁻¹`). Paths can be parsed from the compact type-name
//!   notation used throughout the paper (`"APVC"`, `"A-P-V-C"`), reversed,
//!   concatenated, and tested for symmetry.
//!
//! # Example
//!
//! ```
//! use hetesim_graph::{HinBuilder, MetaPath, Schema};
//!
//! let mut schema = Schema::new();
//! let author = schema.add_type("author").unwrap();
//! let paper = schema.add_type("paper").unwrap();
//! let conf = schema.add_type("conference").unwrap();
//! let writes = schema.add_relation("writes", author, paper).unwrap();
//! let published = schema.add_relation("published_in", paper, conf).unwrap();
//!
//! let mut b = HinBuilder::new(schema);
//! b.add_edge_by_name(writes, "Tom", "P1", 1.0).unwrap();
//! b.add_edge_by_name(writes, "Tom", "P2", 1.0).unwrap();
//! b.add_edge_by_name(published, "P1", "KDD", 1.0).unwrap();
//! b.add_edge_by_name(published, "P2", "KDD", 1.0).unwrap();
//! let hin = b.build();
//!
//! let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
//! assert_eq!(apc.len(), 2);
//! assert_eq!(apc.source_type(), author);
//! assert_eq!(apc.target_type(), conf);
//! assert!(!apc.is_symmetric());
//! assert!(MetaPath::parse(hin.schema(), "A-P-A").unwrap().is_symmetric());
//! ```

mod error;
mod hash;
mod metapath;
mod network;
mod schema;

pub mod binio;
pub mod enumerate;
pub mod io;
pub mod stats;

pub use error::GraphError;
pub use metapath::{Direction, MetaPath, Step};
pub use network::{Hin, HinBuilder, NodeRef};
pub use schema::{RelId, Schema, TypeId};

/// Convenience alias used by fallible entry points of this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
