//! Fast non-cryptographic hashing for node-name indexes.
//!
//! `Hin` keeps one `name -> id` map per node type; rebuilding those maps
//! is on the critical path of every cold start (TSV load and snapshot
//! load alike), and at paper scale it means tens of thousands of short
//! string insertions. The standard library's SipHash is keyed against
//! hash-flooding, which node registries don't need — names come from the
//! operator's own dataset, not an adversary mid-request — so the index
//! uses the Fx word-at-a-time multiply hash (the scheme used by the Rust
//! compiler's own symbol tables) instead. The hasher is deterministic, so
//! it also removes per-process seed variation from the one `HashMap` the
//! query path touches.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// `name -> id` map specialized for node registries.
pub(crate) type NameMap = HashMap<String, u32, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Builds [`FxHasher`]s; stateless, so every map hashes identically.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// Word-at-a-time rotate/xor/multiply hasher (Fx).
#[derive(Clone, Debug)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
            ]));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            // rest.len() < 8, so this indexing cannot go out of bounds.
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.add(b as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let build = FxBuildHasher;
        let mut a = build.build_hasher();
        let mut b = build.build_hasher();
        a.write(b"jiawei_han");
        b.write(b"jiawei_han");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_prefixes_and_lengths() {
        let build = FxBuildHasher;
        let digests: Vec<u64> = ["a", "b", "ab", "ba", "abcdefgh", "abcdefghi", ""]
            .iter()
            .map(|s| {
                let mut h = build.build_hasher();
                h.write(s.as_bytes());
                h.write_u8(0xff);
                h.finish()
            })
            .collect();
        for (i, x) in digests.iter().enumerate() {
            for y in &digests[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn name_map_round_trips() {
        let mut map = NameMap::default();
        for i in 0..1000u32 {
            map.insert(format!("node_{i}"), i);
        }
        assert_eq!(map.get("node_123"), Some(&123));
        assert_eq!(map.get("node_999"), Some(&999));
        assert_eq!(map.get("absent"), None);
    }
}
