//! Relevance-path enumeration over a schema.
//!
//! Section 5.1 of the paper discusses how to choose relevance paths: by
//! domain knowledge, by trying multiple paths, or by supervised learning
//! over a candidate set. This module produces that candidate set — all
//! meta-paths between two types up to a length bound — by walking the
//! schema graph. Candidates feed `hetesim_core::learning`, which fits
//! per-path weights from labeled pairs.

use crate::{MetaPath, Schema, Step, TypeId};

/// All meta-paths from `from` to `to` whose length (step count) is in
/// `1..=max_len`, in order of increasing length, deterministic within a
/// length (relation registration order, forward before backward).
///
/// The walk may revisit types and relations — `A-P-A` backtracks over
/// `writes` and is a perfectly meaningful relevance path — so the number
/// of candidates grows exponentially in `max_len`; keep the bound small
/// (the paper never uses paths longer than 7 steps).
///
/// ```
/// use hetesim_graph::{enumerate::enumerate_paths, Schema};
/// let mut s = Schema::new();
/// let a = s.add_type("author").unwrap();
/// let p = s.add_type("paper").unwrap();
/// s.add_relation("writes", a, p).unwrap();
/// let paths = enumerate_paths(&s, a, a, 4);
/// let rendered: Vec<String> = paths.iter().map(|p| p.display(&s)).collect();
/// assert_eq!(rendered, ["A-P-A", "A-P-A-P-A"]);
/// ```
pub fn enumerate_paths(schema: &Schema, from: TypeId, to: TypeId, max_len: usize) -> Vec<MetaPath> {
    let mut out = Vec::new();
    let mut stack: Vec<Step> = Vec::new();
    walk(schema, from, to, max_len, &mut stack, &mut out);
    out.sort_by_key(|p| p.len());
    out
}

/// Candidate steps departing from a type: every relation with `ty` as its
/// source, traversed forward, plus every relation with `ty` as its target,
/// traversed backward.
fn departures(schema: &Schema, ty: TypeId) -> Vec<Step> {
    let mut steps = Vec::new();
    for rel in schema.relation_ids() {
        if schema.relation_src(rel) == ty {
            steps.push(Step::forward(rel));
        }
        if schema.relation_dst(rel) == ty {
            steps.push(Step::backward(rel));
        }
    }
    steps
}

fn walk(
    schema: &Schema,
    at: TypeId,
    to: TypeId,
    budget: usize,
    stack: &mut Vec<Step>,
    out: &mut Vec<MetaPath>,
) {
    if budget == 0 {
        return;
    }
    for step in departures(schema, at) {
        stack.push(step);
        let next = step.to_type(schema);
        if next == to {
            out.push(
                MetaPath::from_steps(schema, stack.clone()).expect("enumerated steps always chain"),
            );
        }
        walk(schema, next, to, budget - 1, stack, out);
        stack.pop();
    }
}

/// Only the symmetric paths from `enumerate_paths` — the candidate set for
/// PathSim and for same-type clustering tasks.
pub fn enumerate_symmetric_paths(schema: &Schema, ty: TypeId, max_len: usize) -> Vec<MetaPath> {
    enumerate_paths(schema, ty, ty, max_len)
        .into_iter()
        .filter(MetaPath::is_symmetric)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acm_like() -> Schema {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let v = s.add_type("venue").unwrap();
        let c = s.add_type("conference").unwrap();
        s.add_relation("writes", a, p).unwrap();
        s.add_relation("published_in", p, v).unwrap();
        s.add_relation("part_of", v, c).unwrap();
        s
    }

    #[test]
    fn finds_the_canonical_author_conference_path() {
        let s = acm_like();
        let a = s.type_id("author").unwrap();
        let c = s.type_id("conference").unwrap();
        let paths = enumerate_paths(&s, a, c, 3);
        // Exactly one length-3 path exists: A-P-V-C.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].display(&s), "A-P-V-C");
    }

    #[test]
    fn longer_budget_adds_detours() {
        let s = acm_like();
        let a = s.type_id("author").unwrap();
        let c = s.type_id("conference").unwrap();
        let short = enumerate_paths(&s, a, c, 3);
        let long = enumerate_paths(&s, a, c, 5);
        assert!(long.len() > short.len());
        // The detour through co-authors shows up: A-P-A-P-V-C.
        assert!(long.iter().any(|p| p.display(&s) == "A-P-A-P-V-C"));
        // Sorted by length.
        for w in long.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn every_enumerated_path_has_right_endpoints() {
        let s = acm_like();
        let a = s.type_id("author").unwrap();
        let v = s.type_id("venue").unwrap();
        for p in enumerate_paths(&s, a, v, 4) {
            assert_eq!(p.source_type(), a);
            assert_eq!(p.target_type(), v);
            assert!(p.len() <= 4);
        }
    }

    #[test]
    fn symmetric_enumeration_filters() {
        let s = acm_like();
        let a = s.type_id("author").unwrap();
        let sym = enumerate_symmetric_paths(&s, a, 4);
        assert!(!sym.is_empty());
        for p in &sym {
            assert!(p.is_symmetric());
        }
        // A-P-A is the shortest symmetric author path.
        assert_eq!(sym[0].display(&s), "A-P-A");
    }

    #[test]
    fn zero_budget_yields_nothing() {
        let s = acm_like();
        let a = s.type_id("author").unwrap();
        assert!(enumerate_paths(&s, a, a, 0).is_empty());
    }

    #[test]
    fn disconnected_types_yield_nothing() {
        let mut s = acm_like();
        let iso = s.add_type_with_abbrev("island", 'I').unwrap();
        let a = s.type_id("author").unwrap();
        assert!(enumerate_paths(&s, a, iso, 6).is_empty());
    }
}
