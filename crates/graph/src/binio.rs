//! Binary (de)serialization of the graph-side snapshot sections: the
//! [`Schema`] and the per-type node-name registries.
//!
//! These are the `SCHEMA` and `NODES` section payloads of the snapshot
//! format specified in `docs/SNAPSHOT.md`. Everything is little-endian;
//! strings are a `u32` byte length followed by UTF-8 bytes. The decoders
//! are strict: malformed input (truncation, bad UTF-8, out-of-range ids,
//! duplicate names) surfaces as a typed [`GraphError`], never a panic —
//! schemas are rebuilt through the same validating constructors the
//! in-memory builder uses, so a decoded schema upholds every invariant a
//! hand-built one does.

use crate::{GraphError, Result, Schema};

/// Appends a length-prefixed UTF-8 string.
fn encode_str(s: &str, out: &mut Vec<u8>) {
    // Name lengths are user data; u32 is checked rather than assumed.
    let len = u32::try_from(s.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// A bounds-checked little-endian reader (the graph-side twin of
/// `hetesim_sparse::binio::ByteReader`, reporting [`GraphError`]).
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports truncation.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(bytes) => {
                self.pos += n;
                Ok(bytes)
            }
            None => Err(GraphError::Format(format!(
                "truncated while reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self, what: &str) -> Result<String> {
        let len = self.read_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| GraphError::Format(format!("{what}: invalid UTF-8")))
    }
}

/// Encodes a schema: type count, then `(name, abbrev)` per type; relation
/// count, then `(name, src, dst)` per relation. Ids are positional — the
/// decoder re-registers everything in order, so `TypeId`/`RelId` values
/// are stable across a round-trip.
pub fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    out.extend_from_slice(&(schema.type_count() as u16).to_le_bytes());
    for ty in schema.type_ids() {
        encode_str(schema.type_name(ty), out);
        out.extend_from_slice(&(schema.type_abbrev(ty) as u32).to_le_bytes());
    }
    out.extend_from_slice(&(schema.relation_count() as u16).to_le_bytes());
    for rel in schema.relation_ids() {
        encode_str(schema.relation_name(rel), out);
        out.extend_from_slice(&(schema.relation_src(rel).index() as u16).to_le_bytes());
        out.extend_from_slice(&(schema.relation_dst(rel).index() as u16).to_le_bytes());
    }
}

/// Decodes a schema, rebuilding it through the validating registration
/// API — duplicate names, bad abbreviations and dangling type ids are
/// rejected exactly as they would be at build time.
pub fn decode_schema(reader: &mut ByteReader<'_>) -> Result<Schema> {
    let mut schema = Schema::new();
    let ntypes = reader.read_u16("schema type count")?;
    let mut type_ids = Vec::with_capacity(ntypes as usize);
    for i in 0..ntypes {
        let name = reader.read_str(&format!("type #{i} name"))?;
        let abbrev_raw = reader.read_u32(&format!("type #{i} abbreviation"))?;
        let abbrev = char::from_u32(abbrev_raw).ok_or_else(|| {
            GraphError::Format(format!("type #{i}: {abbrev_raw:#x} is not a char"))
        })?;
        type_ids.push(schema.add_type_with_abbrev(&name, abbrev)?);
    }
    let nrels = reader.read_u16("schema relation count")?;
    for i in 0..nrels {
        let name = reader.read_str(&format!("relation #{i} name"))?;
        let src = reader.read_u16(&format!("relation #{i} source type"))? as usize;
        let dst = reader.read_u16(&format!("relation #{i} target type"))? as usize;
        let src = *type_ids
            .get(src)
            .ok_or_else(|| GraphError::Format(format!("relation #{i}: source type #{src}")))?;
        let dst = *type_ids
            .get(dst)
            .ok_or_else(|| GraphError::Format(format!("relation #{i}: target type #{dst}")))?;
        schema.add_relation(&name, src, dst)?;
    }
    Ok(schema)
}

/// Encodes the per-type node-name registries: for each type in schema
/// order, a `u32` node count followed by that many names in index order.
pub fn encode_names(names: &[Vec<String>], out: &mut Vec<u8>) {
    for per_type in names {
        out.extend_from_slice(&(per_type.len() as u32).to_le_bytes());
        for name in per_type {
            encode_str(name, out);
        }
    }
}

/// Decodes node-name registries for `ntypes` types.
pub fn decode_names(reader: &mut ByteReader<'_>, ntypes: usize) -> Result<Vec<Vec<String>>> {
    let mut names = Vec::with_capacity(ntypes);
    for ty in 0..ntypes {
        let count = reader.read_u32(&format!("type #{ty} node count"))? as usize;
        let mut per_type = Vec::with_capacity(count.min(reader.remaining() / 4));
        for i in 0..count {
            per_type.push(reader.read_str(&format!("type #{ty} node #{i} name"))?);
        }
        names.push(per_type);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib_schema() -> Schema {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type_with_abbrev("conference", 'C').unwrap();
        s.add_relation("writes", a, p).unwrap();
        s.add_relation("published_in", p, c).unwrap();
        s
    }

    #[test]
    fn schema_roundtrip() {
        let schema = bib_schema();
        let mut bytes = Vec::new();
        encode_schema(&schema, &mut bytes);
        let back = decode_schema(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.type_count(), schema.type_count());
        assert_eq!(back.relation_count(), schema.relation_count());
        for ty in schema.type_ids() {
            assert_eq!(back.type_name(ty), schema.type_name(ty));
            assert_eq!(back.type_abbrev(ty), schema.type_abbrev(ty));
        }
        for rel in schema.relation_ids() {
            assert_eq!(back.relation_name(rel), schema.relation_name(rel));
            assert_eq!(back.relation_src(rel), schema.relation_src(rel));
            assert_eq!(back.relation_dst(rel), schema.relation_dst(rel));
        }
    }

    #[test]
    fn names_roundtrip_including_unicode() {
        let names = vec![
            vec![
                "Tom".to_string(),
                "Ada Lovelace".to_string(),
                "Erdős".to_string(),
            ],
            vec![],
            vec!["P1".to_string()],
        ];
        let mut bytes = Vec::new();
        encode_names(&names, &mut bytes);
        let back = decode_names(&mut ByteReader::new(&bytes), 3).unwrap();
        assert_eq!(back, names);
    }

    #[test]
    fn truncated_schema_rejected() {
        let mut bytes = Vec::new();
        encode_schema(&bib_schema(), &mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                decode_schema(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut {cut} decoded"
            );
        }
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes()); // one type
        bytes.extend_from_slice(&2u32.to_le_bytes()); // name length 2
        bytes.extend_from_slice(&[0xff, 0xfe]); // invalid UTF-8
        bytes.extend_from_slice(&('A' as u32).to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes()); // no relations
        assert!(matches!(
            decode_schema(&mut ByteReader::new(&bytes)),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn dangling_relation_type_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        encode_str("author", &mut bytes);
        bytes.extend_from_slice(&('A' as u32).to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        encode_str("writes", &mut bytes);
        bytes.extend_from_slice(&0u16.to_le_bytes()); // src: ok
        bytes.extend_from_slice(&7u16.to_le_bytes()); // dst: no such type
        assert!(decode_schema(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn giant_declared_name_count_fails_cleanly() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // node count
        assert!(decode_names(&mut ByteReader::new(&bytes), 1).is_err());
    }
}
