//! Synthetic ACM-like bibliographic network (Figure 3(a), Section 5.1).
//!
//! Schema: papers (P), authors (A), affiliations (F), terms (T), subjects
//! (S), venues (V), conferences (C), with `writes: A→P`,
//! `published_in: P→V`, `part_of: V→C`, `has_term: P→T`,
//! `has_subject: P→S`, `affiliated_with: A→F`.
//!
//! The generator plants the structural contrasts the paper's ACM case
//! studies rely on:
//!
//! * a **concentrated star** author (the C. Faloutsos role): top
//!   productivity, ~95% of papers in one conference (KDD);
//! * two **broad stars** (the P. Yu / J. Han roles): the same total
//!   productivity spread across six conferences;
//! * one **anchor** author per conference: high productivity, loyal to
//!   that conference — so every conference has a "top ranked author"
//!   (Table 3's expert pairs);
//! * Zipfian productivity for everyone else, per-conference topic
//!   vocabularies over terms and subjects, and affiliation blocks aligned
//!   with conferences so `C-V-P-A-F` surfaces the orgs that dominate a
//!   conference (Table 2).

use crate::zipf::{WeightedSampler, Zipf};
use hetesim_graph::{Hin, HinBuilder, RelId, Schema, TypeId};
use hetesim_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 14 ACM-dataset conferences, in the paper's order.
pub const CONFERENCES: [&str; 14] = [
    "KDD", "SIGMOD", "WWW", "SIGIR", "CIKM", "SODA", "STOC", "SOSP", "SPAA", "SIGCOMM", "MobiCOMM",
    "ICML", "COLT", "VLDB",
];

/// Generator parameters. `Default` produces a laptop-friendly network
/// (~2.4K papers); [`AcmConfig::paper_scale`] matches the entity counts of
/// Section 5.1; [`AcmConfig::tiny`] is for tests.
#[derive(Debug, Clone)]
pub struct AcmConfig {
    /// RNG seed; everything is a deterministic function of it.
    pub seed: u64,
    /// Number of papers.
    pub papers: usize,
    /// Number of authors (including the planted ones).
    pub authors: usize,
    /// Number of affiliations.
    pub affiliations: usize,
    /// Number of terms.
    pub terms: usize,
    /// Number of ACM subjects (73 in the real dataset).
    pub subjects: usize,
    /// Venue proceedings per conference (196 / 14 = 14 in the paper).
    pub venues_per_conference: usize,
    /// Maximum co-authors added beyond the lead.
    pub max_coauthors: usize,
    /// Terms attached per paper.
    pub terms_per_paper: usize,
    /// Subjects attached per paper.
    pub subjects_per_paper: usize,
    /// Probability a regular author's paper goes to their home conference.
    pub conference_loyalty: f64,
    /// Zipf exponent of author productivity.
    pub productivity_exponent: f64,
    /// Size of each author's recurring collaborator pool.
    pub collaborator_pool: usize,
}

impl Default for AcmConfig {
    fn default() -> Self {
        AcmConfig {
            seed: 42,
            papers: 2400,
            authors: 3400,
            affiliations: 360,
            terms: 500,
            subjects: 73,
            venues_per_conference: 14,
            max_coauthors: 3,
            terms_per_paper: 6,
            subjects_per_paper: 2,
            conference_loyalty: 0.8,
            productivity_exponent: 1.05,
            collaborator_pool: 6,
        }
    }
}

impl AcmConfig {
    /// A very small network for unit tests.
    pub fn tiny(seed: u64) -> AcmConfig {
        AcmConfig {
            seed,
            papers: 300,
            authors: 260,
            affiliations: 40,
            terms: 80,
            subjects: 20,
            venues_per_conference: 3,
            ..AcmConfig::default()
        }
    }

    /// Entity counts matching Section 5.1 of the paper: 12K papers, 17K
    /// authors, 1.8K affiliations, 1.5K terms, 73 subjects, 196 venues.
    pub fn paper_scale(seed: u64) -> AcmConfig {
        AcmConfig {
            seed,
            papers: 12_000,
            authors: 17_000,
            affiliations: 1_800,
            terms: 1_500,
            subjects: 73,
            venues_per_conference: 14,
            ..AcmConfig::default()
        }
    }
}

/// A generated ACM-like network together with the handles experiments need.
#[derive(Debug)]
pub struct AcmDataset {
    /// The network.
    pub hin: Hin,
    /// The configuration that produced it.
    pub config: AcmConfig,
    /// Type ids, in schema order: author, paper, venue, conference, term,
    /// subject, affiliation.
    pub authors: TypeId,
    /// Paper type.
    pub papers: TypeId,
    /// Venue (proceedings) type.
    pub venues: TypeId,
    /// Conference type.
    pub conferences: TypeId,
    /// Term type.
    pub terms: TypeId,
    /// Subject type.
    pub subjects: TypeId,
    /// Affiliation type.
    pub affiliations: TypeId,
    /// `writes: A → P`.
    pub writes: RelId,
    /// `published_in: P → V`.
    pub published_in: RelId,
    /// `part_of: V → C`.
    pub part_of: RelId,
    /// `has_term: P → T`.
    pub has_term: RelId,
    /// `has_subject: P → S`.
    pub has_subject: RelId,
    /// `affiliated_with: A → F`.
    pub affiliated_with: RelId,
    /// Node name of the planted concentrated star (home: KDD).
    pub star_concentrated: String,
    /// Node names of the planted broad stars.
    pub broad_stars: Vec<String>,
    /// Node names of the per-conference anchor authors, indexed by
    /// conference.
    pub conference_anchors: Vec<String>,
}

/// Per-author placement profile used during generation.
struct AuthorProfile {
    /// Distribution over conferences for this author's papers.
    conf_sampler: WeightedSampler,
    /// Relative productivity weight.
    weight: f64,
}

fn circular_distance(a: usize, b: usize, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Topic sampler for one conference: mass concentrated around the
/// conference's "center" in the topic space, with a global Zipf overlay so
/// a few topics are popular everywhere.
fn topic_sampler(conf: usize, n_topics: usize, n_confs: usize) -> WeightedSampler {
    let center = (conf * n_topics) / n_confs + n_topics / (2 * n_confs);
    let global = Zipf::new(n_topics, 0.8);
    let weights: Vec<f64> = (0..n_topics)
        .map(|t| {
            let d = circular_distance(t, center, n_topics) as f64;
            let local = 1.0 / (1.0 + d * d * (n_confs as f64 * n_confs as f64) / (n_topics as f64));
            local + 0.2 * global.pmf(t) * n_topics as f64 / 10.0
        })
        .collect();
    WeightedSampler::new(&weights)
}

/// Generates the network.
pub fn generate(config: &AcmConfig) -> AcmDataset {
    assert!(config.authors >= CONFERENCES.len() + 3, "too few authors");
    assert!(config.papers > 0 && config.terms > 0 && config.subjects > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_confs = CONFERENCES.len();

    let mut schema = Schema::new();
    let a_ty = schema.add_type_with_abbrev("author", 'A').expect("fresh");
    let p_ty = schema.add_type_with_abbrev("paper", 'P').expect("fresh");
    let v_ty = schema.add_type_with_abbrev("venue", 'V').expect("fresh");
    let c_ty = schema
        .add_type_with_abbrev("conference", 'C')
        .expect("fresh");
    let t_ty = schema.add_type_with_abbrev("term", 'T').expect("fresh");
    let s_ty = schema.add_type_with_abbrev("subject", 'S').expect("fresh");
    let f_ty = schema
        .add_type_with_abbrev("affiliation", 'F')
        .expect("fresh");
    let writes = schema.add_relation("writes", a_ty, p_ty).expect("fresh");
    let published_in = schema
        .add_relation("published_in", p_ty, v_ty)
        .expect("fresh");
    let part_of = schema.add_relation("part_of", v_ty, c_ty).expect("fresh");
    let has_term = schema.add_relation("has_term", p_ty, t_ty).expect("fresh");
    let has_subject = schema
        .add_relation("has_subject", p_ty, s_ty)
        .expect("fresh");
    let affiliated_with = schema
        .add_relation("affiliated_with", a_ty, f_ty)
        .expect("fresh");

    let mut b = HinBuilder::new(schema);

    // --- Node registries -------------------------------------------------
    let conf_ids: Vec<u32> = CONFERENCES.iter().map(|n| b.add_node(c_ty, n)).collect();
    let mut venue_ids: Vec<Vec<u32>> = Vec::with_capacity(n_confs);
    for (ci, name) in CONFERENCES.iter().enumerate() {
        let mut per_conf = Vec::with_capacity(config.venues_per_conference);
        for y in 0..config.venues_per_conference {
            per_conf.push(b.add_node(v_ty, &format!("{name}'{:02}", (97 + y) % 100)));
        }
        let _ = ci;
        venue_ids.push(per_conf);
    }
    let term_ids: Vec<u32> = (0..config.terms)
        .map(|i| b.add_node(t_ty, &format!("term_{i:04}")))
        .collect();
    let subject_ids: Vec<u32> = (0..config.subjects)
        .map(|i| b.add_node(s_ty, &format!("subj_{i:02}")))
        .collect();
    let aff_ids: Vec<u32> = (0..config.affiliations)
        .map(|i| b.add_node(f_ty, &format!("org_{i:04}")))
        .collect();

    // Planted authors first (indices 0..), regular authors after.
    let star_concentrated = "star_concentrated".to_string();
    let broad_stars = vec!["star_broad_0".to_string(), "star_broad_1".to_string()];
    let conference_anchors: Vec<String> =
        CONFERENCES.iter().map(|c| format!("anchor_{c}")).collect();
    let mut author_ids: Vec<u32> = Vec::with_capacity(config.authors);
    author_ids.push(b.add_node(a_ty, &star_concentrated));
    for s in &broad_stars {
        author_ids.push(b.add_node(a_ty, s));
    }
    for s in &conference_anchors {
        author_ids.push(b.add_node(a_ty, s));
    }
    let planted = author_ids.len();
    for i in planted..config.authors {
        author_ids.push(b.add_node(a_ty, &format!("author_{i:05}")));
    }

    // --- Author profiles --------------------------------------------------
    let zipf = Zipf::new(config.authors, config.productivity_exponent);
    let top_weight = zipf.pmf(0) * config.authors as f64;
    let loyal = |home: usize, loyalty: f64| -> WeightedSampler {
        let w: Vec<f64> = (0..n_confs)
            .map(|c| {
                if c == home {
                    loyalty
                } else {
                    (1.0 - loyalty) / (n_confs - 1) as f64
                }
            })
            .collect();
        WeightedSampler::new(&w)
    };
    let kdd = 0usize; // CONFERENCES[0]
    let mut profiles: Vec<AuthorProfile> = Vec::with_capacity(config.authors);
    // Concentrated star: effectively all papers in KDD.
    profiles.push(AuthorProfile {
        conf_sampler: loyal(kdd, 0.95),
        weight: top_weight,
    });
    // Broad stars: same volume, spread across six related conferences
    // (KDD, SIGMOD, WWW, CIKM, ICML, VLDB).
    for _ in &broad_stars {
        let mut w = vec![0.0; n_confs];
        for (c, share) in [
            (0, 0.30),
            (1, 0.16),
            (2, 0.14),
            (4, 0.14),
            (11, 0.12),
            (13, 0.14),
        ] {
            w[c] = share;
        }
        // Residual mass sprinkled uniformly.
        let spread: f64 = 1.0 - w.iter().sum::<f64>();
        for v in &mut w {
            *v += spread / n_confs as f64;
        }
        profiles.push(AuthorProfile {
            conf_sampler: WeightedSampler::new(&w),
            weight: top_weight,
        });
    }
    // Per-conference anchors: high volume, 0.9 loyalty.
    for home in 0..n_confs {
        profiles.push(AuthorProfile {
            conf_sampler: loyal(home, 0.9),
            weight: top_weight * 0.85,
        });
    }
    // Regular authors: random home conference, Zipf weight by rank.
    let mut home_of: Vec<usize> = vec![kdd; planted];
    home_of[1] = kdd; // broad stars nominally "live" at KDD for pooling
    home_of[2] = kdd;
    for i in 1..=conference_anchors.len() {
        home_of[2 + i] = i - 1;
    }
    for i in planted..config.authors {
        let home = rng.random_range(0..n_confs);
        home_of.push(home);
        profiles.push(AuthorProfile {
            conf_sampler: loyal(home, config.conference_loyalty),
            weight: zipf.pmf(i) * config.authors as f64,
        });
    }

    // Productivity sampler over all authors.
    let lead_sampler = WeightedSampler::new(&profiles.iter().map(|p| p.weight).collect::<Vec<_>>());

    // Collaborator pools: recurring co-authors drawn from the same home
    // conference (falling back to anyone), so `A-P-A` has repeat structure.
    let mut by_home: Vec<Vec<usize>> = vec![Vec::new(); n_confs];
    for (i, &h) in home_of.iter().enumerate() {
        by_home[h].push(i);
    }
    let pools: Vec<Vec<usize>> = (0..config.authors)
        .map(|i| {
            let mates = &by_home[home_of[i]];
            let mut pool = Vec::with_capacity(config.collaborator_pool);
            for _ in 0..config.collaborator_pool {
                let cand = if mates.len() > 1 && rng.random::<f64>() < 0.9 {
                    mates[rng.random_range(0..mates.len())]
                } else {
                    rng.random_range(0..config.authors)
                };
                if cand != i {
                    pool.push(cand);
                }
            }
            pool
        })
        .collect();

    // Affiliations: block-aligned with conferences; big orgs first.
    let org_zipf = Zipf::new(config.affiliations.min(24), 1.0);
    let author_aff: Vec<u32> = (0..config.authors)
        .map(|i| {
            if i < planted {
                // Stars and anchors sit at the biggest orgs.
                aff_ids[i % 4]
            } else {
                let home = home_of[i];
                if rng.random::<f64>() < 0.7 {
                    // An org from the home conference's block.
                    let block = config.affiliations / n_confs;
                    let base = home * block;
                    aff_ids[base + rng.random_range(0..block.max(1))]
                } else {
                    aff_ids[org_zipf.sample(&mut rng) % config.affiliations]
                }
            }
        })
        .collect();
    for (i, &aff) in author_aff.iter().enumerate() {
        b.add_edge(affiliated_with, author_ids[i], aff, 1.0)
            .expect("registered nodes");
    }

    // Venue -> conference edges.
    for (ci, venues) in venue_ids.iter().enumerate() {
        for &v in venues {
            b.add_edge(part_of, v, conf_ids[ci], 1.0)
                .expect("registered nodes");
        }
    }

    // Topic samplers per conference.
    let term_samplers: Vec<WeightedSampler> = (0..n_confs)
        .map(|c| topic_sampler(c, config.terms, n_confs))
        .collect();
    let subject_samplers: Vec<WeightedSampler> = (0..n_confs)
        .map(|c| topic_sampler(c, config.subjects, n_confs))
        .collect();

    // --- Papers -----------------------------------------------------------
    for pi in 0..config.papers {
        let paper = b.add_node(p_ty, &format!("paper_{pi:05}"));
        let lead = lead_sampler.sample(&mut rng);
        let conf = profiles[lead].conf_sampler.sample(&mut rng);
        let venue = venue_ids[conf][rng.random_range(0..config.venues_per_conference)];
        b.add_edge(published_in, paper, venue, 1.0)
            .expect("registered nodes");
        b.add_edge(writes, author_ids[lead], paper, 1.0)
            .expect("registered nodes");
        // Co-authors from the lead's pool (deduplicated).
        let mut coauthors: Vec<usize> = Vec::new();
        while coauthors.len() < config.max_coauthors && rng.random::<f64>() < 0.55 {
            let cand = if !pools[lead].is_empty() && rng.random::<f64>() < 0.8 {
                pools[lead][rng.random_range(0..pools[lead].len())]
            } else {
                rng.random_range(0..config.authors)
            };
            if cand != lead && !coauthors.contains(&cand) {
                coauthors.push(cand);
            }
        }
        for co in coauthors {
            b.add_edge(writes, author_ids[co], paper, 1.0)
                .expect("registered nodes");
        }
        // Terms and subjects from the conference's topic profiles.
        let mut seen_terms = Vec::with_capacity(config.terms_per_paper);
        while seen_terms.len() < config.terms_per_paper {
            let t = term_samplers[conf].sample(&mut rng);
            if !seen_terms.contains(&t) {
                seen_terms.push(t);
                b.add_edge(has_term, paper, term_ids[t], 1.0)
                    .expect("registered nodes");
            }
        }
        let mut seen_subjects = Vec::with_capacity(config.subjects_per_paper);
        while seen_subjects.len() < config.subjects_per_paper.min(config.subjects) {
            let s = subject_samplers[conf].sample(&mut rng);
            if !seen_subjects.contains(&s) {
                seen_subjects.push(s);
                b.add_edge(has_subject, paper, subject_ids[s], 1.0)
                    .expect("registered nodes");
            }
        }
    }

    AcmDataset {
        hin: b.build(),
        config: config.clone(),
        authors: a_ty,
        papers: p_ty,
        venues: v_ty,
        conferences: c_ty,
        terms: t_ty,
        subjects: s_ty,
        affiliations: f_ty,
        writes,
        published_in,
        part_of,
        has_term,
        has_subject,
        affiliated_with,
        star_concentrated,
        broad_stars,
        conference_anchors,
    }
}

impl AcmDataset {
    /// Raw author × conference paper counts (the product of the raw
    /// adjacencies along `A-P-V-C`) — the ground truth for the expert
    /// finding experiment (Figure 6).
    pub fn author_conference_counts(&self) -> CsrMatrix {
        let ap = self.hin.adjacency(self.writes);
        let pv = self.hin.adjacency(self.published_in);
        let vc = self.hin.adjacency(self.part_of);
        ap.matmul(pv)
            .and_then(|m| m.matmul(vc))
            .expect("schema-consistent shapes")
    }

    /// Author index by name.
    pub fn author_id(&self, name: &str) -> u32 {
        self.hin
            .node_id(self.authors, name)
            .expect("planted author exists")
    }

    /// Conference index by name.
    pub fn conference_id(&self, name: &str) -> u32 {
        self.hin
            .node_id(self.conferences, name)
            .expect("known conference")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::stats::stats;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&AcmConfig::tiny(7));
        let b = generate(&AcmConfig::tiny(7));
        assert_eq!(stats(&a.hin), stats(&b.hin));
        let c = generate(&AcmConfig::tiny(8));
        assert_ne!(stats(&a.hin).total_edges, 0);
        assert_ne!(stats(&a.hin), stats(&c.hin));
    }

    #[test]
    fn entity_counts_match_config() {
        let cfg = AcmConfig::tiny(1);
        let d = generate(&cfg);
        assert_eq!(d.hin.node_count(d.papers), cfg.papers);
        assert_eq!(d.hin.node_count(d.authors), cfg.authors);
        assert_eq!(d.hin.node_count(d.conferences), 14);
        assert_eq!(d.hin.node_count(d.venues), 14 * cfg.venues_per_conference);
        assert_eq!(d.hin.node_count(d.subjects), cfg.subjects);
        assert_eq!(d.hin.node_count(d.affiliations), cfg.affiliations);
    }

    #[test]
    fn every_paper_has_venue_author_topics() {
        let d = generate(&AcmConfig::tiny(2));
        let pv = d.hin.adjacency(d.published_in);
        let pa = d.hin.adjacency_t(d.writes);
        let pt = d.hin.adjacency(d.has_term);
        let ps = d.hin.adjacency(d.has_subject);
        for p in 0..d.hin.node_count(d.papers) {
            assert_eq!(pv.row_nnz(p), 1, "paper {p} venues");
            assert!(pa.row_nnz(p) >= 1, "paper {p} authors");
            assert_eq!(pt.row_nnz(p), d.config.terms_per_paper);
            assert_eq!(ps.row_nnz(p), d.config.subjects_per_paper);
        }
    }

    #[test]
    fn concentrated_star_dominates_kdd() {
        let d = generate(&AcmConfig::tiny(3));
        let counts = d.author_conference_counts();
        let star = d.author_id(&d.star_concentrated) as usize;
        let kdd = d.conference_id("KDD") as usize;
        let star_kdd = counts.get(star, kdd);
        let star_total: f64 = counts.row_values(star).iter().sum();
        assert!(star_total > 5.0, "star should be highly productive");
        assert!(
            star_kdd / star_total > 0.75,
            "star should publish mostly in KDD ({star_kdd}/{star_total})"
        );
    }

    #[test]
    fn broad_stars_are_spread() {
        let d = generate(&AcmConfig::tiny(4));
        let counts = d.author_conference_counts();
        let broad = d.author_id(&d.broad_stars[0]) as usize;
        let total: f64 = counts.row_values(broad).iter().sum();
        assert!(total > 5.0);
        // No single conference holds more than 60% of a broad star's work.
        let max = counts
            .row_values(broad)
            .iter()
            .fold(0.0f64, |m, &v| m.max(v));
        assert!(
            max / total < 0.6,
            "broad star too concentrated: {max}/{total}"
        );
    }

    #[test]
    fn anchors_favor_their_conference() {
        let d = generate(&AcmConfig::tiny(5));
        let counts = d.author_conference_counts();
        let mut favored = 0;
        for (ci, anchor) in d.conference_anchors.iter().enumerate() {
            let a = d.author_id(anchor) as usize;
            let own = counts.get(a, ci);
            let total: f64 = counts.row_values(a).iter().sum();
            if total > 0.0 && own / total >= 0.5 {
                favored += 1;
            }
        }
        // With 300 papers across 14 anchors a couple may starve; most must
        // still favor their home conference.
        assert!(favored >= 10, "only {favored}/14 anchors favor home");
    }

    #[test]
    fn paper_scale_config_counts() {
        let cfg = AcmConfig::paper_scale(1);
        assert_eq!(cfg.papers, 12_000);
        assert_eq!(cfg.authors, 17_000);
        assert_eq!(cfg.subjects, 73);
        assert_eq!(cfg.venues_per_conference * 14, 196);
    }
}
