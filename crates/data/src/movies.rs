//! Synthetic movie-recommendation network.
//!
//! The paper's introduction motivates relevance search with recommendation:
//! "in a recommendation system, we need to know the relatedness between
//! users and movies", and "a teenager may like the movie *Harry Potter*
//! more than *The Shawshank Redemption*". This module generates that
//! scenario as a HIN — users (U), movies (M), genres (G), actors (A) and
//! demographics (D) — with *weighted* `rates` edges (star ratings), which
//! also exercises the weighted-relation code path the bibliographic
//! networks do not.
//!
//! Planted structure: each demographic has a genre-preference profile;
//! one blockbuster per demographic is loved disproportionately by that
//! demographic (the "Harry Potter for teens" contrast), so path-based
//! relevance along `U-D-U-M` (what people like me watch) ranks the right
//! blockbuster first.

use crate::zipf::{WeightedSampler, Zipf};
use hetesim_graph::{Hin, HinBuilder, RelId, Schema, TypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The planted demographics.
pub const DEMOGRAPHICS: [&str; 4] = ["teen", "young_adult", "adult", "senior"];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MoviesConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Number of movies.
    pub movies: usize,
    /// Number of genres.
    pub genres: usize,
    /// Number of actors.
    pub actors: usize,
    /// Ratings per user.
    pub ratings_per_user: usize,
    /// Actors per movie.
    pub actors_per_movie: usize,
    /// Genres per movie (1..=this).
    pub max_genres_per_movie: usize,
    /// Probability a rating follows the user's demographic preference
    /// rather than global popularity.
    pub preference_strength: f64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        MoviesConfig {
            seed: 42,
            users: 1200,
            movies: 500,
            genres: 12,
            actors: 400,
            ratings_per_user: 12,
            actors_per_movie: 4,
            max_genres_per_movie: 3,
            preference_strength: 0.75,
        }
    }
}

impl MoviesConfig {
    /// A very small network for tests.
    pub fn tiny(seed: u64) -> MoviesConfig {
        MoviesConfig {
            seed,
            users: 150,
            movies: 80,
            genres: 8,
            actors: 60,
            ratings_per_user: 8,
            ..MoviesConfig::default()
        }
    }
}

/// A generated recommendation network with its planted handles.
#[derive(Debug)]
pub struct MoviesDataset {
    /// The network.
    pub hin: Hin,
    /// The configuration that produced it.
    pub config: MoviesConfig,
    /// User type.
    pub users: TypeId,
    /// Movie type.
    pub movies: TypeId,
    /// Genre type.
    pub genres: TypeId,
    /// Actor type (abbreviation `'C'` for "cast" — `'A'` would collide
    /// with nothing here, but `'C'` keeps paths readable next to `U`/`M`).
    pub actors: TypeId,
    /// Demographic type.
    pub demographics: TypeId,
    /// `rates: U → M`, weighted 1–5.
    pub rates: RelId,
    /// `has_genre: M → G`.
    pub has_genre: RelId,
    /// `features: M → C` (cast membership).
    pub features: RelId,
    /// `belongs_to: U → D`.
    pub belongs_to: RelId,
    /// Planted demographic of every user.
    pub user_demographic: Vec<usize>,
    /// One planted blockbuster movie name per demographic.
    pub blockbusters: Vec<String>,
}

impl MoviesDataset {
    /// Movie index by name.
    pub fn movie_id(&self, name: &str) -> u32 {
        self.hin.node_id(self.movies, name).expect("known movie")
    }

    /// User index by name.
    pub fn user_id(&self, name: &str) -> u32 {
        self.hin.node_id(self.users, name).expect("known user")
    }
}

/// Generates the network.
pub fn generate(config: &MoviesConfig) -> MoviesDataset {
    assert!(config.genres >= DEMOGRAPHICS.len(), "need >= 4 genres");
    assert!(config.movies > DEMOGRAPHICS.len() && config.users > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let nd = DEMOGRAPHICS.len();

    let mut schema = Schema::new();
    let u_ty = schema.add_type_with_abbrev("user", 'U').expect("fresh");
    let m_ty = schema.add_type_with_abbrev("movie", 'M').expect("fresh");
    let g_ty = schema.add_type_with_abbrev("genre", 'G').expect("fresh");
    let c_ty = schema.add_type_with_abbrev("actor", 'C').expect("fresh");
    let d_ty = schema
        .add_type_with_abbrev("demographic", 'D')
        .expect("fresh");
    let rates = schema.add_relation("rates", u_ty, m_ty).expect("fresh");
    let has_genre = schema.add_relation("has_genre", m_ty, g_ty).expect("fresh");
    let features = schema.add_relation("features", m_ty, c_ty).expect("fresh");
    let belongs_to = schema
        .add_relation("belongs_to", u_ty, d_ty)
        .expect("fresh");

    let mut b = HinBuilder::new(schema);
    let demo_ids: Vec<u32> = DEMOGRAPHICS.iter().map(|d| b.add_node(d_ty, d)).collect();
    let genre_ids: Vec<u32> = (0..config.genres)
        .map(|i| b.add_node(g_ty, &format!("genre_{i:02}")))
        .collect();
    let actor_ids: Vec<u32> = (0..config.actors)
        .map(|i| b.add_node(c_ty, &format!("actor_{i:03}")))
        .collect();

    // Movies: the first `nd` are the planted blockbusters, single-genre
    // aligned with one demographic's favorite genre.
    let blockbusters: Vec<String> = (0..nd)
        .map(|d| format!("blockbuster_{}", DEMOGRAPHICS[d]))
        .collect();
    let mut movie_ids: Vec<u32> = Vec::with_capacity(config.movies);
    let mut movie_genres: Vec<Vec<usize>> = Vec::with_capacity(config.movies);
    for (d, name) in blockbusters.iter().enumerate() {
        movie_ids.push(b.add_node(m_ty, name));
        movie_genres.push(vec![d]); // genre d == demographic d's favorite
    }
    for i in nd..config.movies {
        movie_ids.push(b.add_node(m_ty, &format!("movie_{i:04}")));
        let count = 1 + rng.random_range(0..config.max_genres_per_movie);
        let mut gs = Vec::with_capacity(count);
        while gs.len() < count {
            let g = rng.random_range(0..config.genres);
            if !gs.contains(&g) {
                gs.push(g);
            }
        }
        movie_genres.push(gs);
    }
    for (mi, gs) in movie_genres.iter().enumerate() {
        for &g in gs {
            b.add_edge(has_genre, movie_ids[mi], genre_ids[g], 1.0)
                .expect("registered nodes");
        }
    }
    // Casts: popular actors (Zipf) across movies.
    let actor_zipf = Zipf::new(config.actors, 1.0);
    for &m in &movie_ids {
        let mut cast = Vec::with_capacity(config.actors_per_movie);
        while cast.len() < config.actors_per_movie.min(config.actors) {
            let a = actor_zipf.sample(&mut rng);
            if !cast.contains(&a) {
                cast.push(a);
                b.add_edge(features, m, actor_ids[a], 1.0)
                    .expect("registered nodes");
            }
        }
    }

    // Demographic genre preferences: demographic d strongly prefers genre
    // d, mildly the neighbors.
    let pref_samplers: Vec<WeightedSampler> = (0..nd)
        .map(|d| {
            let w: Vec<f64> = (0..config.genres)
                .map(|g| {
                    if g == d {
                        8.0
                    } else if g % nd == d {
                        2.0
                    } else {
                        0.5
                    }
                })
                .collect();
            WeightedSampler::new(&w)
        })
        .collect();
    // Per-genre movie lists for preference-driven sampling.
    let mut by_genre: Vec<Vec<usize>> = vec![Vec::new(); config.genres];
    for (mi, gs) in movie_genres.iter().enumerate() {
        for &g in gs {
            by_genre[g].push(mi);
        }
    }
    let movie_pop = Zipf::new(config.movies, 0.9);

    // Users.
    let mut user_demographic = Vec::with_capacity(config.users);
    for ui in 0..config.users {
        let uid = b.add_node(u_ty, &format!("user_{ui:05}"));
        let d = rng.random_range(0..nd);
        user_demographic.push(d);
        b.add_edge(belongs_to, uid, demo_ids[d], 1.0)
            .expect("registered nodes");
        let mut seen: Vec<usize> = Vec::with_capacity(config.ratings_per_user);
        while seen.len() < config.ratings_per_user.min(config.movies) {
            let (mi, on_pref) = if rng.random::<f64>() < config.preference_strength {
                // A movie from a preferred genre; blockbusters double-dip
                // because they sit first in their genre's list.
                let g = pref_samplers[d].sample(&mut rng);
                let list = &by_genre[g];
                if list.is_empty() {
                    (movie_pop.sample(&mut rng), false)
                } else if g == d && rng.random::<f64>() < 0.35 {
                    (list[0], true) // the demographic's blockbuster
                } else {
                    (list[rng.random_range(0..list.len())], true)
                }
            } else {
                (movie_pop.sample(&mut rng), false)
            };
            if seen.contains(&mi) {
                continue;
            }
            seen.push(mi);
            // Ratings: preference-aligned picks rate high.
            let base = if on_pref { 4.0 } else { 2.5 };
            let rating = (base + rng.random_range(0..2) as f64).min(5.0);
            b.add_edge(rates, uid, movie_ids[mi], rating)
                .expect("registered nodes");
        }
    }

    MoviesDataset {
        hin: b.build(),
        config: config.clone(),
        users: u_ty,
        movies: m_ty,
        genres: g_ty,
        actors: c_ty,
        demographics: d_ty,
        rates,
        has_genre,
        features,
        belongs_to,
        user_demographic,
        blockbusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::stats::stats;

    #[test]
    fn deterministic_and_counts() {
        let cfg = MoviesConfig::tiny(5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(stats(&a.hin), stats(&b.hin));
        assert_eq!(a.hin.node_count(a.users), cfg.users);
        assert_eq!(a.hin.node_count(a.movies), cfg.movies);
        assert_eq!(a.hin.node_count(a.demographics), 4);
        assert_eq!(a.user_demographic.len(), cfg.users);
    }

    #[test]
    fn ratings_are_weighted_one_to_five() {
        let d = generate(&MoviesConfig::tiny(6));
        let rates = d.hin.adjacency(d.rates);
        assert!(rates.nnz() > 0);
        for (_, _, w) in rates.iter() {
            assert!((1.0..=5.0).contains(&w), "rating {w} out of range");
        }
    }

    #[test]
    fn every_user_has_one_demographic() {
        let d = generate(&MoviesConfig::tiny(7));
        let bel = d.hin.adjacency(d.belongs_to);
        for u in 0..d.hin.node_count(d.users) {
            assert_eq!(bel.row_nnz(u), 1);
        }
    }

    #[test]
    fn blockbusters_skew_to_their_demographic() {
        let d = generate(&MoviesConfig::tiny(8));
        let rates_t = d.hin.adjacency_t(d.rates); // movie x user
        for (demo, name) in d.blockbusters.iter().enumerate() {
            let m = d.movie_id(name) as usize;
            let raters = rates_t.row_indices(m);
            if raters.len() < 5 {
                continue; // too few ratings to be meaningful in tiny nets
            }
            let own = raters
                .iter()
                .filter(|&&u| d.user_demographic[u as usize] == demo)
                .count() as f64;
            let frac = own / raters.len() as f64;
            // Disproportionate = well above the uniform share (1/4 with
            // four demographics); tiny nets are too noisy for a tighter
            // bound.
            let uniform = 1.0 / DEMOGRAPHICS.len() as f64;
            assert!(
                frac > 1.3 * uniform,
                "{name}: only {frac:.2} of raters are {} (uniform share {uniform:.2})",
                DEMOGRAPHICS[demo]
            );
        }
    }

    #[test]
    fn movies_have_genres_and_cast() {
        let d = generate(&MoviesConfig::tiny(9));
        let mg = d.hin.adjacency(d.has_genre);
        let mc = d.hin.adjacency(d.features);
        for m in 0..d.hin.node_count(d.movies) {
            assert!(mg.row_nnz(m) >= 1);
            assert_eq!(mc.row_nnz(m), d.config.actors_per_movie);
        }
    }
}
