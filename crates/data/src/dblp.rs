//! Synthetic DBLP-like four-area network (Figure 3(b), Section 5.1).
//!
//! Schema: authors (A), papers (P), conferences (C), terms (T), with
//! `writes: A→P`, `published_in: P→C`, `has_term: P→T`.
//!
//! The real dataset is the classic "DBLP four-area" subset: 20 conferences
//! across database, data mining, information retrieval and AI, with 4057
//! authors, all 20 conferences and 100 papers labeled by area. The
//! generator plants the same partition: every author belongs to one area,
//! papers are published in the author's area with probability
//! `1 - area_mixing`, terms come from per-area vocabularies, and labels are
//! emitted for the same entity subsets so the AUC (Table 5) and NMI
//! (Table 6) experiments run unchanged.

use crate::zipf::{WeightedSampler, Zipf};
use hetesim_graph::{Hin, HinBuilder, RelId, Schema, TypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four research areas.
pub const AREAS: [&str; 4] = ["database", "data_mining", "info_retrieval", "ai"];

/// The 20 conferences and their planted area, five per area.
pub const CONFERENCES: [(&str, usize); 20] = [
    ("SIGMOD", 0),
    ("VLDB", 0),
    ("ICDE", 0),
    ("EDBT", 0),
    ("PODS", 0),
    ("KDD", 1),
    ("ICDM", 1),
    ("SDM", 1),
    ("PKDD", 1),
    ("PAKDD", 1),
    ("SIGIR", 2),
    ("ECIR", 2),
    ("CIKM", 2),
    ("WSDM", 2),
    ("TREC", 2),
    ("AAAI", 3),
    ("IJCAI", 3),
    ("ICML", 3),
    ("NIPS", 3),
    ("ECAI", 3),
];

/// Generator parameters. `Default` is laptop-friendly;
/// [`DblpConfig::paper_scale`] matches Section 5.1 (14K papers, 14K
/// authors, 8.9K terms, 4057 labeled authors, 100 labeled papers).
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of papers.
    pub papers: usize,
    /// Number of authors.
    pub authors: usize,
    /// Number of terms.
    pub terms: usize,
    /// Probability a paper lands outside its lead author's area.
    pub area_mixing: f64,
    /// How many of the most productive authors receive labels.
    pub labeled_authors: usize,
    /// How many papers receive labels.
    pub labeled_papers: usize,
    /// Terms per paper.
    pub terms_per_paper: usize,
    /// Max co-authors beyond the lead.
    pub max_coauthors: usize,
    /// Zipf exponent of author productivity.
    pub productivity_exponent: f64,
    /// Recurring collaborator pool size.
    pub collaborator_pool: usize,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            seed: 42,
            papers: 2800,
            authors: 2800,
            terms: 1800,
            area_mixing: 0.12,
            labeled_authors: 800,
            labeled_papers: 100,
            terms_per_paper: 6,
            max_coauthors: 3,
            productivity_exponent: 1.0,
            collaborator_pool: 6,
        }
    }
}

impl DblpConfig {
    /// A very small network for unit tests.
    pub fn tiny(seed: u64) -> DblpConfig {
        DblpConfig {
            seed,
            papers: 400,
            authors: 300,
            terms: 150,
            labeled_authors: 120,
            labeled_papers: 40,
            ..DblpConfig::default()
        }
    }

    /// Entity counts matching Section 5.1 of the paper.
    pub fn paper_scale(seed: u64) -> DblpConfig {
        DblpConfig {
            seed,
            papers: 14_000,
            authors: 14_000,
            terms: 8_900,
            labeled_authors: 4_057,
            labeled_papers: 100,
            ..DblpConfig::default()
        }
    }
}

/// A generated DBLP-like network with its planted ground truth.
#[derive(Debug)]
pub struct DblpDataset {
    /// The network.
    pub hin: Hin,
    /// The configuration that produced it.
    pub config: DblpConfig,
    /// Author type.
    pub authors: TypeId,
    /// Paper type.
    pub papers: TypeId,
    /// Conference type.
    pub conferences: TypeId,
    /// Term type.
    pub terms: TypeId,
    /// `writes: A → P`.
    pub writes: RelId,
    /// `published_in: P → C`.
    pub published_in: RelId,
    /// `has_term: P → T`.
    pub has_term: RelId,
    /// Planted area of every conference (index-aligned with the registry).
    pub conference_area: Vec<usize>,
    /// Planted area of every author.
    pub author_area: Vec<usize>,
    /// Area of every paper (the area of its publishing conference).
    pub paper_area: Vec<usize>,
    /// The labeled-author subset (most productive first), as node indices.
    pub labeled_authors: Vec<u32>,
    /// The labeled-paper subset, as node indices.
    pub labeled_papers: Vec<u32>,
}

impl DblpDataset {
    /// Conference index by name.
    pub fn conference_id(&self, name: &str) -> u32 {
        self.hin
            .node_id(self.conferences, name)
            .expect("known conference")
    }

    /// Number of planted areas (clusters for Table 6).
    pub fn n_areas(&self) -> usize {
        AREAS.len()
    }
}

/// Generates the network.
pub fn generate(config: &DblpConfig) -> DblpDataset {
    assert!(config.papers > 0 && config.authors > 0 && config.terms >= 8);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_confs = CONFERENCES.len();
    let n_areas = AREAS.len();

    let mut schema = Schema::new();
    let a_ty = schema.add_type_with_abbrev("author", 'A').expect("fresh");
    let p_ty = schema.add_type_with_abbrev("paper", 'P').expect("fresh");
    let c_ty = schema
        .add_type_with_abbrev("conference", 'C')
        .expect("fresh");
    let t_ty = schema.add_type_with_abbrev("term", 'T').expect("fresh");
    let writes = schema.add_relation("writes", a_ty, p_ty).expect("fresh");
    let published_in = schema
        .add_relation("published_in", p_ty, c_ty)
        .expect("fresh");
    let has_term = schema.add_relation("has_term", p_ty, t_ty).expect("fresh");

    let mut b = HinBuilder::new(schema);
    let conf_ids: Vec<u32> = CONFERENCES
        .iter()
        .map(|(name, _)| b.add_node(c_ty, name))
        .collect();
    let conference_area: Vec<usize> = CONFERENCES.iter().map(|&(_, a)| a).collect();
    let term_ids: Vec<u32> = (0..config.terms)
        .map(|i| b.add_node(t_ty, &format!("term_{i:05}")))
        .collect();
    let author_ids: Vec<u32> = (0..config.authors)
        .map(|i| b.add_node(a_ty, &format!("author_{i:05}")))
        .collect();

    // Areas, home conferences, productivity.
    let author_area: Vec<usize> = (0..config.authors)
        .map(|_| rng.random_range(0..n_areas))
        .collect();
    let home_conf: Vec<usize> = author_area
        .iter()
        .map(|&area| {
            let within = rng.random_range(0..n_confs / n_areas);
            area * (n_confs / n_areas) + within
        })
        .collect();
    let zipf = Zipf::new(config.authors, config.productivity_exponent);
    let lead_sampler = WeightedSampler::new(
        &(0..config.authors)
            .map(|i| zipf.pmf(i) * config.authors as f64)
            .collect::<Vec<_>>(),
    );

    // Per-area conference and term samplers. Area vocabularies overlap
    // slightly (shared stop-ish terms at the head of the global Zipf).
    let conf_sampler_for_area: Vec<WeightedSampler> = (0..n_areas)
        .map(|area| {
            let w: Vec<f64> = (0..n_confs)
                .map(|c| if conference_area[c] == area { 1.0 } else { 0.0 })
                .collect();
            WeightedSampler::new(&w)
        })
        .collect();
    let any_conf = WeightedSampler::new(&vec![1.0; n_confs]);
    let term_sampler_for_area: Vec<WeightedSampler> = (0..n_areas)
        .map(|area| {
            let block = config.terms / n_areas;
            let w: Vec<f64> = (0..config.terms)
                .map(|t| {
                    let in_block = t / block.max(1) == area;
                    let shared = t < config.terms / 20 + 2;
                    if in_block {
                        1.0
                    } else if shared {
                        0.8
                    } else {
                        0.02
                    }
                })
                .collect();
            WeightedSampler::new(&w)
        })
        .collect();

    // Collaborator pools within areas.
    let mut by_area: Vec<Vec<usize>> = vec![Vec::new(); n_areas];
    for (i, &ar) in author_area.iter().enumerate() {
        by_area[ar].push(i);
    }
    let pools: Vec<Vec<usize>> = (0..config.authors)
        .map(|i| {
            let mates = &by_area[author_area[i]];
            (0..config.collaborator_pool)
                .filter_map(|_| {
                    let cand = mates[rng.random_range(0..mates.len())];
                    (cand != i).then_some(cand)
                })
                .collect()
        })
        .collect();

    // Papers.
    let mut paper_area = Vec::with_capacity(config.papers);
    let mut paper_count_per_author = vec![0usize; config.authors];
    for pi in 0..config.papers {
        let paper = b.add_node(p_ty, &format!("paper_{pi:05}"));
        let lead = lead_sampler.sample(&mut rng);
        paper_count_per_author[lead] += 1;
        // Prolific authors publish more broadly (as in real DBLP, where
        // senior researchers appear across areas); Zipf ranks are
        // assigned in index order, so low index = high productivity.
        let mixing = if lead < config.authors / 20 {
            (2.5 * config.area_mixing).min(0.5)
        } else {
            config.area_mixing
        };
        let conf = if rng.random::<f64>() < mixing {
            any_conf.sample(&mut rng)
        } else if rng.random::<f64>() < 0.6 {
            home_conf[lead]
        } else {
            conf_sampler_for_area[author_area[lead]].sample(&mut rng)
        };
        paper_area.push(conference_area[conf]);
        b.add_edge(published_in, paper, conf_ids[conf], 1.0)
            .expect("registered nodes");
        b.add_edge(writes, author_ids[lead], paper, 1.0)
            .expect("registered nodes");
        let mut coauthors: Vec<usize> = Vec::new();
        while coauthors.len() < config.max_coauthors && rng.random::<f64>() < 0.5 {
            let cand = if !pools[lead].is_empty() && rng.random::<f64>() < 0.85 {
                pools[lead][rng.random_range(0..pools[lead].len())]
            } else {
                rng.random_range(0..config.authors)
            };
            if cand != lead && !coauthors.contains(&cand) {
                coauthors.push(cand);
                paper_count_per_author[cand] += 1;
            }
        }
        for co in coauthors {
            b.add_edge(writes, author_ids[co], paper, 1.0)
                .expect("registered nodes");
        }
        let area = conference_area[conf];
        let mut seen = Vec::with_capacity(config.terms_per_paper);
        while seen.len() < config.terms_per_paper {
            let t = term_sampler_for_area[area].sample(&mut rng);
            if !seen.contains(&t) {
                seen.push(t);
                b.add_edge(has_term, paper, term_ids[t], 1.0)
                    .expect("registered nodes");
            }
        }
    }

    // Labeled subsets: the most productive authors, and the first N papers
    // (both deterministic).
    let mut by_productivity: Vec<usize> = (0..config.authors).collect();
    by_productivity.sort_by(|&a, &b| {
        paper_count_per_author[b]
            .cmp(&paper_count_per_author[a])
            .then(a.cmp(&b))
    });
    let labeled_authors: Vec<u32> = by_productivity
        .into_iter()
        .take(config.labeled_authors)
        .map(|i| author_ids[i])
        .collect();
    let labeled_papers: Vec<u32> = (0..config.labeled_papers.min(config.papers) as u32).collect();

    DblpDataset {
        hin: b.build(),
        config: config.clone(),
        authors: a_ty,
        papers: p_ty,
        conferences: c_ty,
        terms: t_ty,
        writes,
        published_in,
        has_term,
        conference_area,
        author_area,
        paper_area,
        labeled_authors,
        labeled_papers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::stats::stats;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&DblpConfig::tiny(9));
        let b = generate(&DblpConfig::tiny(9));
        assert_eq!(stats(&a.hin), stats(&b.hin));
        assert_eq!(a.author_area, b.author_area);
    }

    #[test]
    fn counts_and_labels() {
        let cfg = DblpConfig::tiny(1);
        let d = generate(&cfg);
        assert_eq!(d.hin.node_count(d.conferences), 20);
        assert_eq!(d.hin.node_count(d.papers), cfg.papers);
        assert_eq!(d.labeled_authors.len(), cfg.labeled_authors);
        assert_eq!(d.labeled_papers.len(), cfg.labeled_papers);
        assert_eq!(d.conference_area.len(), 20);
        assert_eq!(d.paper_area.len(), cfg.papers);
        // Five conferences per area.
        for area in 0..4 {
            assert_eq!(d.conference_area.iter().filter(|&&a| a == area).count(), 5);
        }
    }

    #[test]
    fn papers_mostly_stay_in_lead_area() {
        let d = generate(&DblpConfig::tiny(2));
        // Count how often a paper's conference area matches its lead's area
        // indirectly: authors' areas should correlate with the areas of the
        // conferences of the papers they write.
        let pa = d.hin.adjacency_t(d.writes); // paper x author
        let mut matches = 0usize;
        let mut total = 0usize;
        for p in 0..d.hin.node_count(d.papers) {
            for &a in pa.row_indices(p) {
                total += 1;
                if d.author_area[a as usize] == d.paper_area[p] {
                    matches += 1;
                }
            }
        }
        let frac = matches as f64 / total as f64;
        assert!(frac > 0.7, "area coherence too weak: {frac}");
    }

    #[test]
    fn labeled_authors_are_most_productive() {
        let d = generate(&DblpConfig::tiny(3));
        let ap = d.hin.adjacency(d.writes);
        let labeled_min = d
            .labeled_authors
            .iter()
            .map(|&a| ap.row_nnz(a as usize))
            .min()
            .unwrap();
        // Every labeled author has at least as many papers as the median
        // unlabeled author (weak but deterministic sanity check).
        let mut unlabeled: Vec<usize> = (0..d.hin.node_count(d.authors) as u32)
            .filter(|i| !d.labeled_authors.contains(i))
            .map(|i| ap.row_nnz(i as usize))
            .collect();
        unlabeled.sort_unstable();
        let median = unlabeled[unlabeled.len() / 2];
        assert!(labeled_min >= median);
    }

    #[test]
    fn paper_scale_config_counts() {
        let cfg = DblpConfig::paper_scale(1);
        assert_eq!(cfg.papers, 14_000);
        assert_eq!(cfg.authors, 14_000);
        assert_eq!(cfg.labeled_authors, 4_057);
        assert_eq!(cfg.labeled_papers, 100);
    }
}
