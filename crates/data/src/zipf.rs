//! Power-law and weighted sampling.
//!
//! Author productivity and term frequency in bibliographic networks are
//! heavy-tailed; the generators sample both from a Zipf distribution. The
//! samplers precompute a cumulative table and draw by binary search, so a
//! sample is `O(log n)` and the whole generator stays fast at full ACM
//! scale.

use rand::Rng;

/// A Zipf distribution over ranks `0..n`: `P(k) ∝ 1 / (k + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false — the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// A general discrete sampler over arbitrary non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cdf: Vec<f64>,
}

impl WeightedSampler {
    /// Builds from a weight vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> WeightedSampler {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in &mut cdf {
            *v /= acc;
        }
        WeightedSampler { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false — the constructor rejects empty weights.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_empirical_head_heaviness() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) < 10).count() as f64 / n as f64;
        // Analytically the top-10 ranks carry a large share of mass.
        let expected: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((head - expected).abs() < 0.02);
        assert!(expected > 0.3);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let w = WeightedSampler::new(&[0.0, 3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_sampler_rejects_empty() {
        WeightedSampler::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn weighted_sampler_rejects_zero_mass() {
        WeightedSampler::new(&[0.0, 0.0]);
    }
}
