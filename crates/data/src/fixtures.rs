//! The paper's worked toy examples as ready-made networks.
//!
//! * [`fig4`] — the Figure 4 bibliographic network behind Example 2
//!   (`HeteSim(Tom, KDD | APC) = 0.5` before normalization);
//! * [`fig5`] — the Figure 5 bipartite relation whose edge-object
//!   decomposition yields the unnormalized HeteSim row
//!   `a2 → (0, 1/6, 1/3, 1/6)`.

use hetesim_graph::{Hin, HinBuilder, Schema};

/// Handles into the [`fig4`] network.
#[derive(Debug)]
pub struct Fig4 {
    /// The network: 3 authors, 4 papers, 2 conferences.
    pub hin: Hin,
}

/// Builds the Figure 4 toy network.
///
/// Tom wrote P1 and P2, both published in KDD; Mary wrote P2 and P3; Bob
/// wrote P3 and P4; SIGMOD published P3 and P4. Schema abbreviations are
/// `A`, `P`, `C`, so paths parse as `"APC"`, `"APAPC"`, etc.
pub fn fig4() -> Fig4 {
    let mut schema = Schema::new();
    let a = schema.add_type("author").expect("fresh schema");
    let p = schema.add_type("paper").expect("fresh schema");
    let c = schema.add_type("conference").expect("fresh schema");
    let writes = schema.add_relation("writes", a, p).expect("fresh schema");
    let published = schema
        .add_relation("published_in", p, c)
        .expect("fresh schema");
    let mut b = HinBuilder::new(schema);
    for (author, paper) in [
        ("Tom", "P1"),
        ("Tom", "P2"),
        ("Mary", "P2"),
        ("Mary", "P3"),
        ("Bob", "P3"),
        ("Bob", "P4"),
    ] {
        b.add_edge_by_name(writes, author, paper, 1.0)
            .expect("schema matches");
    }
    for (paper, conf) in [
        ("P1", "KDD"),
        ("P2", "KDD"),
        ("P3", "SIGMOD"),
        ("P4", "SIGMOD"),
    ] {
        b.add_edge_by_name(published, paper, conf, 1.0)
            .expect("schema matches");
    }
    Fig4 { hin: b.build() }
}

/// Handles into the [`fig5`] network.
#[derive(Debug)]
pub struct Fig5 {
    /// The bipartite network: 3 `A` objects, 4 `B` objects, relation `ab`.
    pub hin: Hin,
    /// The expected *unnormalized* HeteSim values of row `a2` over
    /// `b1..b4` per Figure 5(c): `(0, 1/6, 1/3, 1/6)`.
    pub expected_a2_row: [f64; 4],
}

/// Builds the Figure 5 bipartite relation: `a1–{b1,b2}`, `a2–{b2,b3,b4}`,
/// `a3–{b1,b4}`.
pub fn fig5() -> Fig5 {
    let mut schema = Schema::new();
    let a = schema.add_type("A").expect("fresh schema");
    let b_ty = schema.add_type("B").expect("fresh schema");
    let ab = schema.add_relation("ab", a, b_ty).expect("fresh schema");
    let mut b = HinBuilder::new(schema);
    // Register in order so a1..a3 / b1..b4 get indices 0..
    for name in ["a1", "a2", "a3"] {
        b.add_node(a, name);
    }
    for name in ["b1", "b2", "b3", "b4"] {
        b.add_node(b_ty, name);
    }
    for (x, y) in [
        ("a1", "b1"),
        ("a1", "b2"),
        ("a2", "b2"),
        ("a2", "b3"),
        ("a2", "b4"),
        ("a3", "b1"),
        ("a3", "b4"),
    ] {
        b.add_edge_by_name(ab, x, y, 1.0).expect("schema matches");
    }
    Fig5 {
        hin: b.build(),
        expected_a2_row: [0.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 6.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::MetaPath;

    #[test]
    fn fig4_shape() {
        let f = fig4();
        let a = f.hin.schema().type_id("author").unwrap();
        let p = f.hin.schema().type_id("paper").unwrap();
        let c = f.hin.schema().type_id("conference").unwrap();
        assert_eq!(f.hin.node_count(a), 3);
        assert_eq!(f.hin.node_count(p), 4);
        assert_eq!(f.hin.node_count(c), 2);
        assert!(MetaPath::parse(f.hin.schema(), "APC").is_ok());
        // Tom's out-neighbors are exactly P1, P2.
        let writes = f.hin.schema().relation_id("writes").unwrap();
        let tom = f.hin.node_id(a, "Tom").unwrap();
        assert_eq!(f.hin.out_degree(writes, tom), 2);
    }

    #[test]
    fn fig5_shape() {
        let f = fig5();
        let ab = f.hin.schema().relation_id("ab").unwrap();
        assert_eq!(f.hin.adjacency(ab).shape(), (3, 4));
        assert_eq!(f.hin.adjacency(ab).nnz(), 7);
        // Degrees per the figure: b1:2, b2:2, b3:1, b4:2.
        for (b_idx, deg) in [(0u32, 2), (1, 2), (2, 1), (3, 2)] {
            assert_eq!(f.hin.in_degree(ab, b_idx), deg);
        }
    }
}
