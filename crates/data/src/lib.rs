#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Synthetic datasets for the HeteSim experiments.
//!
//! The paper evaluates on two proprietary crawls — an ACM Digital Library
//! snapshot (June 2010) and a four-area DBLP subset — that cannot be
//! redistributed. Every experiment, however, probes *structural* contrasts
//! (publication concentration vs. breadth, shared-author overlap between
//! conferences, planted community structure), not the identity of real
//! researchers. This crate generates networks with the same schema, the
//! same entity-count scale, and those same contrasts planted explicitly:
//!
//! * [`acm`] — the 7-type ACM-like network (Figure 3(a)): 14 conferences
//!   with venues (proceedings), Zipfian author productivity, per-conference
//!   topic vocabularies, and planted author archetypes — a *concentrated
//!   star* who publishes almost exclusively in one conference (the
//!   C. Faloutsos role in Tables 1, 3, 4) and *broad stars* with equal
//!   volume spread over many conferences (the P. Yu / J. Han role).
//! * [`dblp`] — the 4-type DBLP-like network (Figure 3(b)): 20 conferences
//!   in 4 planted research areas with area labels on conferences, authors
//!   and papers, driving the AUC (Table 5) and NMI (Table 6) tasks.
//! * [`fixtures`] — the toy networks of Figure 4 (Example 2's
//!   `HeteSim(Tom, KDD | APC) = 0.5`) and Figure 5 (the atomic-relation
//!   decomposition whose unnormalized row is `(0, 1/6, 1/3, 1/6)`).
//! * [`zipf`] — the power-law and weighted samplers underlying the
//!   generators.
//!
//! All generators are deterministic functions of their config's `seed`.

pub mod acm;
pub mod dblp;
pub mod fixtures;
pub mod movies;
pub mod zipf;
