//! Property-based tests of the dataset generators: for arbitrary small
//! configurations, generation never panics and the structural invariants
//! every experiment relies on hold.

use hetesim_data::{acm, dblp, movies, zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn acm_invariants_for_arbitrary_configs(
        seed in 0u64..1000,
        papers in 30..200usize,
        authors in 20..150usize,
        venues in 1..4usize,
    ) {
        let cfg = acm::AcmConfig {
            seed,
            papers,
            authors: authors + 20, // room for the planted authors
            affiliations: 20,
            terms: 40,
            subjects: 12,
            venues_per_conference: venues,
            ..acm::AcmConfig::default()
        };
        let d = acm::generate(&cfg);
        prop_assert_eq!(d.hin.node_count(d.papers), papers);
        prop_assert_eq!(d.hin.node_count(d.conferences), 14);
        // Every paper: exactly one venue, >= 1 author.
        let pv = d.hin.adjacency(d.published_in);
        let pa = d.hin.adjacency_t(d.writes);
        for p in 0..papers {
            prop_assert_eq!(pv.row_nnz(p), 1);
            prop_assert!(pa.row_nnz(p) >= 1);
        }
        // Every author has exactly one affiliation.
        let af = d.hin.adjacency(d.affiliated_with);
        for a in 0..d.hin.node_count(d.authors) {
            prop_assert_eq!(af.row_nnz(a), 1);
        }
        // Every venue belongs to exactly one conference.
        let vc = d.hin.adjacency(d.part_of);
        for v in 0..d.hin.node_count(d.venues) {
            prop_assert_eq!(vc.row_nnz(v), 1);
        }
    }

    #[test]
    fn dblp_invariants_for_arbitrary_configs(
        seed in 0u64..1000,
        papers in 30..200usize,
        authors in 10..150usize,
    ) {
        let cfg = dblp::DblpConfig {
            seed,
            papers,
            authors,
            terms: 60,
            labeled_authors: authors / 2,
            labeled_papers: papers / 4,
            ..dblp::DblpConfig::default()
        };
        let d = dblp::generate(&cfg);
        prop_assert_eq!(d.hin.node_count(d.conferences), 20);
        prop_assert_eq!(d.author_area.len(), authors);
        prop_assert_eq!(d.paper_area.len(), papers);
        prop_assert_eq!(d.labeled_authors.len(), authors / 2);
        // Paper areas agree with the publishing conference's area.
        let pc = d.hin.adjacency(d.published_in);
        for p in 0..papers {
            prop_assert_eq!(pc.row_nnz(p), 1);
            let conf = pc.row_indices(p)[0] as usize;
            prop_assert_eq!(d.paper_area[p], d.conference_area[conf]);
        }
        // Labels are valid node indices.
        for &a in &d.labeled_authors {
            prop_assert!((a as usize) < authors);
        }
    }

    #[test]
    fn movies_invariants_for_arbitrary_configs(
        seed in 0u64..1000,
        users in 10..120usize,
        n_movies in 10..100usize,
    ) {
        let cfg = movies::MoviesConfig {
            seed,
            users,
            movies: n_movies,
            genres: 8,
            actors: 30,
            ratings_per_user: 5,
            ..movies::MoviesConfig::default()
        };
        let d = movies::generate(&cfg);
        prop_assert_eq!(d.hin.node_count(d.users), users);
        prop_assert_eq!(d.user_demographic.len(), users);
        let rates = d.hin.adjacency(d.rates);
        for (_, _, w) in rates.iter() {
            prop_assert!((1.0..=5.0).contains(&w));
        }
        for u in 0..users {
            prop_assert_eq!(rates.row_nnz(u), 5.min(n_movies));
        }
    }

    #[test]
    fn zipf_sampler_never_escapes_range(n in 1..500usize, s in 0.0..3.0f64, seed in 0u64..100) {
        let z = zipf::Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
