use hetesim_core::{reachable, PathMeasure, Ranked, Result};
use hetesim_graph::{Hin, MetaPath};
use hetesim_sparse::CsrMatrix;

/// Path-Constrained Random Walk (Lao & Cohen, 2010).
///
/// `PCRW(s, t | P)` is the probability that a random walker starting at `s`
/// and following the relevance path `P` step by step ends at `t` — i.e. the
/// `(s, t)` entry of the reachable-probability matrix (Definition 9).
///
/// PCRW is the paper's main asymmetric antagonist: `PCRW(s, t | P)` and
/// `PCRW(t, s | P⁻¹)` generally disagree (Table 3), the walker is often
/// *more* likely to land on a high-degree stranger than on itself along a
/// round-trip path (Table 4), and its rank quality trails HeteSim on the
/// query task (Table 5, Figure 6).
#[derive(Debug)]
pub struct Pcrw<'a> {
    hin: &'a Hin,
}

impl<'a> Pcrw<'a> {
    /// A PCRW measure over the given network.
    pub fn new(hin: &'a Hin) -> Self {
        Pcrw { hin }
    }

    /// The underlying network.
    pub fn hin(&self) -> &'a Hin {
        self.hin
    }

    /// Reachable-probability row for a single source (sparse propagation).
    pub fn walk_distribution(&self, path: &MetaPath, source: u32) -> Result<Vec<f64>> {
        let v = reachable::propagate_from(self.hin, path.steps(), source)?;
        Ok(v.to_dense())
    }
}

impl PathMeasure for Pcrw<'_> {
    fn name(&self) -> &'static str {
        "PCRW"
    }

    fn relevance_matrix(&self, path: &MetaPath) -> Result<CsrMatrix> {
        reachable::reachable_matrix(self.hin, path.steps())
    }

    fn score(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        let v = reachable::propagate_from(self.hin, path.steps(), a)?;
        Ok(v.get(b as usize))
    }

    fn rank_targets(&self, path: &MetaPath, a: u32) -> Result<Vec<Ranked>> {
        let v = reachable::propagate_from(self.hin, path.steps(), a)?;
        let mut out: Vec<Ranked> = v
            .iter()
            .map(|(t, s)| Ranked {
                index: t as u32,
                score: s,
            })
            .collect();
        out.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.index.cmp(&y.index))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};

    fn fig4() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(pb, "P1", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P2", "KDD", 1.0).unwrap();
        b.add_edge_by_name(pb, "P3", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn walk_probabilities_sum_to_one() {
        let hin = fig4();
        let pcrw = Pcrw::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        for a in 0..2u32 {
            let d = pcrw.walk_distribution(&apc, a).unwrap();
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pcrw_is_asymmetric() {
        let hin = fig4();
        let pcrw = Pcrw::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let cpa = apc.reversed();
        let a = hin.schema().type_id("author").unwrap();
        let c = hin.schema().type_id("conference").unwrap();
        let mary = hin.node_id(a, "Mary").unwrap();
        let kdd = hin.node_id(c, "KDD").unwrap();
        let fwd = pcrw.score(&apc, mary, kdd).unwrap();
        let bwd = pcrw.score(&cpa, kdd, mary).unwrap();
        // Mary reaches KDD with prob 0.5; KDD reaches Mary with prob 0.25.
        assert!((fwd - 0.5).abs() < 1e-12);
        assert!((bwd - 0.25).abs() < 1e-12);
        assert!(fwd != bwd);
    }

    #[test]
    fn matrix_matches_scores() {
        let hin = fig4();
        let pcrw = Pcrw::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let m = pcrw.relevance_matrix(&apc).unwrap();
        for a in 0..2u32 {
            for c in 0..2u32 {
                assert!(
                    (m.get(a as usize, c as usize) - pcrw.score(&apc, a, c).unwrap()).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn ranking_is_descending() {
        let hin = fig4();
        let pcrw = Pcrw::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let ranked = pcrw.rank_targets(&apc, 1).unwrap();
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn name_is_pcrw() {
        let hin = fig4();
        assert_eq!(Pcrw::new(&hin).name(), "PCRW");
    }
}
