use hetesim_core::{CoreError, PathMeasure, Result};
use hetesim_graph::{GraphError, Hin, MetaPath};
use hetesim_sparse::{chain, CooMatrix, CsrMatrix};

/// PathSim (Sun et al., VLDB 2011).
///
/// For a *symmetric* meta-path `P` between same-typed objects,
/// `PathSim(a, b) = 2·M(a,b) / (M(a,a) + M(b,b))` where `M` counts path
/// instances (the product of the raw, unnormalized adjacency matrices along
/// `P`). PathSim rewards peers with balanced *visibility*: authors with
/// similar overall publication volume rank high even if their venue
/// distributions differ — the contrast HeteSim exploits in Table 4.
///
/// PathSim is undefined for asymmetric paths and different-typed endpoints;
/// [`PathMeasure::relevance_matrix`] returns an error for those, which is
/// itself one of the paper's motivating observations.
#[derive(Debug)]
pub struct PathSim<'a> {
    hin: &'a Hin,
}

impl<'a> PathSim<'a> {
    /// A PathSim measure over the given network.
    pub fn new(hin: &'a Hin) -> Self {
        PathSim { hin }
    }

    /// Path-instance count matrix `M` for an arbitrary path: the product of
    /// raw adjacency matrices along the steps.
    pub fn count_matrix(&self, path: &MetaPath) -> Result<CsrMatrix> {
        let mats: Vec<&CsrMatrix> = path
            .steps()
            .iter()
            .map(|&s| self.hin.step_adjacency(s))
            .collect();
        Ok(chain::multiply_chain(&mats).map_err(GraphError::from)?)
    }

    fn require_symmetric(&self, path: &MetaPath) -> Result<()> {
        if !path.is_symmetric() {
            return Err(CoreError::Graph(GraphError::InvalidPath(format!(
                "PathSim requires a symmetric path, got {}",
                path.display(self.hin.schema())
            ))));
        }
        Ok(())
    }
}

impl PathMeasure for PathSim<'_> {
    fn name(&self) -> &'static str {
        "PathSim"
    }

    fn relevance_matrix(&self, path: &MetaPath) -> Result<CsrMatrix> {
        self.require_symmetric(path)?;
        let m = self.count_matrix(path)?;
        let diag: Vec<f64> = (0..m.nrows()).map(|i| m.get(i, i)).collect();
        let mut coo = CooMatrix::with_capacity(m.nrows(), m.ncols(), m.nnz());
        for (a, b, v) in m.iter() {
            let denom = diag[a] + diag[b];
            if denom > 0.0 {
                coo.push(a, b, 2.0 * v / denom);
            }
        }
        Ok(coo.to_csr())
    }

    fn score(&self, path: &MetaPath, a: u32, b: u32) -> Result<f64> {
        self.require_symmetric(path)?;
        let m = self.count_matrix(path)?;
        let denom = m.get(a as usize, a as usize) + m.get(b as usize, b as usize);
        if denom == 0.0 {
            Ok(0.0)
        } else {
            Ok(2.0 * m.get(a as usize, b as usize) / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let c = s.add_type("conference").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let pb = s.add_relation("published_in", p, c).unwrap();
        let mut b = HinBuilder::new(s);
        // Tom: 2 papers in KDD. Mary: 1 paper in KDD, 1 in SIGMOD.
        // Bob: 4 papers in KDD (high volume).
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Tom", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P3", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P4", 1.0).unwrap();
        for i in 5..=8 {
            b.add_edge_by_name(w, "Bob", &format!("P{i}"), 1.0).unwrap();
        }
        for p_kdd in ["P1", "P2", "P3", "P5", "P6", "P7", "P8"] {
            b.add_edge_by_name(pb, p_kdd, "KDD", 1.0).unwrap();
        }
        b.add_edge_by_name(pb, "P4", "SIGMOD", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn self_similarity_is_one() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apcpa = MetaPath::parse(hin.schema(), "A-P-C-P-A").unwrap();
        for a in 0..3u32 {
            let v = ps.score(&apcpa, a, a).unwrap();
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_in_arguments() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apcpa = MetaPath::parse(hin.schema(), "A-P-C-P-A").unwrap();
        for a in 0..3u32 {
            for b in 0..3u32 {
                let ab = ps.score(&apcpa, a, b).unwrap();
                let ba = ps.score(&apcpa, b, a).unwrap();
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn volume_balance_matters() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apcpa = MetaPath::parse(hin.schema(), "A-P-C-P-A").unwrap();
        let a = hin.schema().type_id("author").unwrap();
        let tom = hin.node_id(a, "Tom").unwrap();
        let mary = hin.node_id(a, "Mary").unwrap();
        let bob = hin.node_id(a, "Bob").unwrap();
        // Tom and Mary have similar volume; Bob dwarfs Tom, which PathSim
        // penalizes through the diagonal normalization.
        let tom_mary = ps.score(&apcpa, tom, mary).unwrap();
        let tom_bob = ps.score(&apcpa, tom, bob).unwrap();
        assert!(tom_mary > 0.0 && tom_bob > 0.0);
        // M(tom,bob)=2*4=8, M(tom,tom)=4, M(bob,bob)=16 -> 16/20 = 0.8
        assert!((tom_bob - 0.8).abs() < 1e-12);
        // M(tom,mary)=2, M(mary,mary)=2 -> 4/6 ≈ 0.667
        assert!((tom_mary - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_path_is_rejected() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        assert!(ps.relevance_matrix(&apc).is_err());
        assert!(ps.score(&apc, 0, 0).is_err());
    }

    #[test]
    fn matrix_matches_scores() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apcpa = MetaPath::parse(hin.schema(), "A-P-C-P-A").unwrap();
        let m = ps.relevance_matrix(&apcpa).unwrap();
        for a in 0..3u32 {
            for b in 0..3u32 {
                let s = ps.score(&apcpa, a, b).unwrap();
                assert!((m.get(a as usize, b as usize) - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn count_matrix_counts_path_instances() {
        let hin = toy();
        let ps = PathSim::new(&hin);
        let apc = MetaPath::parse(hin.schema(), "APC").unwrap();
        let m = ps.count_matrix(&apc).unwrap();
        let a = hin.schema().type_id("author").unwrap();
        let c = hin.schema().type_id("conference").unwrap();
        let tom = hin.node_id(a, "Tom").unwrap() as usize;
        let kdd = hin.node_id(c, "KDD").unwrap() as usize;
        assert_eq!(m.get(tom, kdd), 2.0); // Tom has 2 KDD papers
    }
}
