use hetesim_graph::{Hin, NodeRef, TypeId};
use hetesim_sparse::{CooMatrix, CsrMatrix};

/// A heterogeneous network flattened into one homogeneous directed graph.
///
/// SimRank and random-walk-with-restart are defined on plain graphs; to
/// apply them to a HIN (as the paper does when comparing complexities) all
/// typed node registries are concatenated into one global index space and
/// every relation instance becomes an ordinary edge.
#[derive(Debug, Clone)]
pub struct FlatGraph {
    /// Starting global index of each type (plus one trailing sentinel =
    /// total node count).
    offsets: Vec<usize>,
    /// Global adjacency. Directed: relation instances point src → dst;
    /// undirected construction stores both directions.
    adj: CsrMatrix,
}

impl FlatGraph {
    fn build(hin: &Hin, undirected: bool) -> FlatGraph {
        let schema = hin.schema();
        let mut offsets = Vec::with_capacity(schema.type_count() + 1);
        let mut total = 0usize;
        for ty in schema.type_ids() {
            offsets.push(total);
            total += hin.node_count(ty);
        }
        offsets.push(total);
        let mut coo = CooMatrix::new(total, total);
        for rel in schema.relation_ids() {
            let s_off = offsets[schema.relation_src(rel).index()];
            let d_off = offsets[schema.relation_dst(rel).index()];
            for (r, c, v) in hin.adjacency(rel).iter() {
                coo.push(s_off + r, d_off + c, v);
                if undirected {
                    coo.push(d_off + c, s_off + r, v);
                }
            }
        }
        FlatGraph {
            offsets,
            adj: coo.to_csr(),
        }
    }

    /// Flattens keeping relation direction.
    pub fn directed(hin: &Hin) -> FlatGraph {
        FlatGraph::build(hin, false)
    }

    /// Flattens treating every relation instance as a bidirectional link —
    /// the natural reading for bibliographic relations like "writes".
    pub fn undirected(hin: &Hin) -> FlatGraph {
        FlatGraph::build(hin, true)
    }

    /// Total number of global nodes.
    pub fn node_count(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// The global adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Global index of a typed node.
    pub fn global_index(&self, node: NodeRef) -> usize {
        self.offsets[node.ty.index()] + node.idx as usize
    }

    /// Inverse of [`FlatGraph::global_index`]: which type's range a global
    /// index falls into, and the local index within it.
    pub fn local_index(&self, global: usize) -> (usize, u32) {
        debug_assert!(global < self.node_count());
        // offsets is sorted; partition_point finds the type whose range
        // contains `global`.
        let ty = self.offsets.partition_point(|&o| o <= global) - 1;
        (ty, (global - self.offsets[ty]) as u32)
    }

    /// The global index range `[start, end)` occupied by one type.
    pub fn type_range(&self, ty: TypeId) -> std::ops::Range<usize> {
        self.offsets[ty.index()]..self.offsets[ty.index() + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn directed_flatten_counts() {
        let hin = toy();
        let g = FlatGraph::directed(&hin);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.adjacency().nnz(), 3);
    }

    #[test]
    fn undirected_flatten_doubles_edges() {
        let hin = toy();
        let g = FlatGraph::undirected(&hin);
        assert_eq!(g.adjacency().nnz(), 6);
        // Symmetry of the adjacency.
        let t = g.adjacency().transpose();
        assert_eq!(&t, g.adjacency());
    }

    #[test]
    fn global_local_roundtrip() {
        let hin = toy();
        let g = FlatGraph::directed(&hin);
        let a = hin.schema().type_id("author").unwrap();
        let p = hin.schema().type_id("paper").unwrap();
        for ty in [a, p] {
            for idx in 0..hin.node_count(ty) as u32 {
                let gi = g.global_index(NodeRef::new(ty, idx));
                assert_eq!(g.local_index(gi), (ty.index(), idx));
            }
        }
        assert_eq!(g.type_range(a), 0..2);
        assert_eq!(g.type_range(p), 2..4);
    }

    #[test]
    fn edge_targets_are_offset() {
        let hin = toy();
        let g = FlatGraph::directed(&hin);
        // Tom (global 0) -> P1 (global 2).
        assert_eq!(g.adjacency().get(0, 2), 1.0);
        assert_eq!(g.adjacency().get(0, 1), 0.0);
    }
}
