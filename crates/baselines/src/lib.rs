#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Baseline relevance/similarity measures the HeteSim paper compares
//! against (Section 2 and Section 5).
//!
//! * [`Pcrw`] — the Path-Constrained Random Walk of Lao & Cohen: the
//!   probability of reaching the target by following the relevance path.
//!   Asymmetric — the paper's Tables 3 and 4 and Figure 6 contrast this
//!   asymmetry with HeteSim's symmetry.
//! * [`PathSim`] — Sun et al.'s meta-path similarity, defined only for
//!   *symmetric* paths between same-typed objects (Tables 4 and 6).
//! * [`simrank`] — Jeh & Widom's SimRank, both the general whole-network
//!   form (used in the Section 4.6 complexity comparison) and the
//!   bipartite hop decomposition behind Property 5 (SimRank is the sum of
//!   unnormalized HeteSim over all even self-paths).
//! * [`rwr`] — random walk with restart (Personalized PageRank), the
//!   classic asymmetric proximity for heterogeneous graphs.
//!
//! All measures operate on the same [`hetesim_graph::Hin`] and, where
//! meaningful, implement [`hetesim_core::PathMeasure`] so experiments can
//! swap them freely.

mod flatten;
mod pathsim;
mod pcrw;
pub mod rwr;
pub mod simrank;

pub use flatten::FlatGraph;
pub use pathsim::PathSim;
pub use pcrw::Pcrw;
