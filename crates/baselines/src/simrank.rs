//! SimRank (Jeh & Widom, KDD 2002) and its connection to HeteSim
//! (Property 5 of the paper).
//!
//! Two forms are provided:
//!
//! * [`simrank`] — the classic whole-network fixed point
//!   `S = max(C · Q S Qᵀ, I)` over a flattened HIN, where `Q` is the
//!   row-normalized in-neighbor matrix. This is the measure whose
//!   `O(k d n² T⁴)` complexity the paper contrasts with HeteSim's
//!   `O(l d n²)` in Section 4.6; the scaling bench reproduces that gap.
//! * [`bipartite_hop_terms`] — the hop decomposition used in Property 5:
//!   on a bipartite graph `A →R B` with `C = 1` and no diagonal reset,
//!   the k-th term equals the *unnormalized* HeteSim over the self-path
//!   `(R R⁻¹)^k`, and SimRank is the limit of the partial sums. The
//!   integration tests verify the equality term by term against
//!   `HeteSimEngine`.

use crate::FlatGraph;
use hetesim_core::Result;
use hetesim_graph::Hin;
use hetesim_sparse::{CsrMatrix, DenseMatrix};

/// Configuration for the classic SimRank fixed point.
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay constant `C ∈ (0, 1)`; the original paper suggests 0.8.
    pub c: f64,
    /// Number of fixed-point iterations `k`.
    pub iterations: usize,
    /// Hard cap on flattened node count — SimRank stores a dense
    /// `n × n` similarity matrix, so this guards against accidental
    /// multi-gigabyte allocations.
    pub max_nodes: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        SimRankConfig {
            c: 0.8,
            iterations: 10,
            max_nodes: 4000,
        }
    }
}

/// Whole-network SimRank over the undirected flattening of a HIN.
///
/// Returns the dense global similarity matrix (indexed by
/// [`FlatGraph::global_index`]). Errors are not possible beyond the node
/// cap, which panics deliberately: exceeding it is a misuse, not a runtime
/// condition.
pub fn simrank(hin: &Hin, cfg: SimRankConfig) -> (FlatGraph, DenseMatrix) {
    let flat = FlatGraph::undirected(hin);
    let n = flat.node_count();
    assert!(
        n <= cfg.max_nodes,
        "SimRank on {n} nodes exceeds the {} node cap (O(n^2) memory)",
        cfg.max_nodes
    );
    let q = flat.adjacency().row_normalized();
    let mut s = DenseMatrix::identity(n);
    for _ in 0..cfg.iterations {
        // S' = C * Q S Q^T, then diag reset to 1.
        let qs_qt = sandwich(&q, &s).expect("shape checked");
        let mut next = qs_qt.scaled(cfg.c);
        for i in 0..n {
            next.set(i, i, 1.0);
        }
        s = next;
    }
    (flat, s)
}

/// Computes `U · inner · Uᵀ` with sparse `U` and dense `inner`.
fn sandwich(u: &CsrMatrix, inner: &DenseMatrix) -> Result<DenseMatrix> {
    let ui = u.matmul_dense(inner)?;
    Ok(u.matmul_dense(&ui.transpose())?.transpose())
}

/// Per-hop meeting-probability terms on a bipartite relation (Property 5).
///
/// Given the adjacency `w` of `A →R B`, returns for `k = 1..=hops` the
/// A-side matrices `A_k` with
/// `A_k(a1, a2) = HeteSim(a1, a2 | (R R⁻¹)^k)` (unnormalized), computed by
/// the two-sided SimRank recursion of the paper's appendix:
/// `A_{k+1} = U B_k Uᵀ`, `B_{k+1} = V A_k Vᵀ` with `A_0 = I_A`, `B_0 = I_B`,
/// `U` the row-normalized `w` and `V` the row-normalized `wᵀ`. The partial
/// sums converge to bipartite SimRank with `C = 1`.
pub fn bipartite_hop_terms(w: &CsrMatrix, hops: usize) -> Result<Vec<DenseMatrix>> {
    let u = w.row_normalized();
    let v = w.transpose().row_normalized();
    let mut terms = Vec::with_capacity(hops);
    let mut a_side = DenseMatrix::identity(w.nrows());
    let mut b_side = DenseMatrix::identity(w.ncols());
    for _ in 0..hops {
        let a_next = sandwich(&u, &b_side)?;
        let b_next = sandwich(&v, &a_side)?;
        terms.push(a_next.clone());
        a_side = a_next;
        b_side = b_next;
    }
    Ok(terms)
}

/// B-side hop terms: `T_k(b1, b2) = HeteSim(b1, b2 | (R⁻¹ R)^k)`, computed
/// with the column-normalized walk (B walks to A through `R⁻¹`).
pub fn bipartite_hop_terms_reverse(w: &CsrMatrix, hops: usize) -> Result<Vec<DenseMatrix>> {
    bipartite_hop_terms(&w.transpose(), hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};
    use hetesim_sparse::CooMatrix;

    fn toy_hin() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Bob", "P2", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn simrank_diag_is_one_and_symmetric() {
        let hin = toy_hin();
        let (_, s) = simrank(&hin, SimRankConfig::default());
        for i in 0..s.nrows() {
            assert_eq!(s.get(i, i), 1.0);
        }
        assert!(s.is_symmetric(1e-9));
    }

    #[test]
    fn simrank_scores_in_unit_interval() {
        let hin = toy_hin();
        let (_, s) = simrank(&hin, SimRankConfig::default());
        for r in 0..s.nrows() {
            for c in 0..s.ncols() {
                let v = s.get(r, c);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "s({r},{c}) = {v}");
            }
        }
    }

    #[test]
    fn simrank_related_above_unrelated() {
        let hin = toy_hin();
        let (flat, s) = simrank(&hin, SimRankConfig::default());
        let a = hin.schema().type_id("author").unwrap();
        let tom = flat.global_index(hetesim_graph::NodeRef::new(a, 0));
        let mary = flat.global_index(hetesim_graph::NodeRef::new(a, 1));
        let bob = flat.global_index(hetesim_graph::NodeRef::new(a, 2));
        // Tom and Mary share P1; Tom and Bob share nothing directly.
        assert!(s.get(tom, mary) > s.get(tom, bob));
    }

    #[test]
    #[should_panic(expected = "node cap")]
    fn node_cap_is_enforced() {
        let hin = toy_hin();
        let cfg = SimRankConfig {
            max_nodes: 2,
            ..SimRankConfig::default()
        };
        simrank(&hin, cfg);
    }

    #[test]
    fn hop_terms_are_probabilities() {
        let mut coo = CooMatrix::new(3, 3);
        for (a, b) in [(0, 0), (0, 1), (1, 1), (2, 2)] {
            coo.push(a, b, 1.0);
        }
        let w = coo.to_csr();
        let terms = bipartite_hop_terms(&w, 3).unwrap();
        assert_eq!(terms.len(), 3);
        for t in &terms {
            // Each entry is a meeting probability: within [0, 1], and the
            // matrix is symmetric in its two walkers.
            for r in 0..t.nrows() {
                for c in 0..t.ncols() {
                    let v = t.get(r, c);
                    assert!((0.0..=1.0 + 1e-9).contains(&v), "t({r},{c}) = {v}");
                }
            }
            assert!(t.is_symmetric(1e-9));
        }
        // An isolated pair of walkers that can only meet at their unique
        // shared paper meet with probability 1 at every hop.
        for t in &terms {
            assert!((t.get(2, 2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reverse_terms_have_b_side_shape() {
        let mut coo = CooMatrix::new(2, 5);
        coo.push(0, 0, 1.0);
        coo.push(1, 4, 1.0);
        let w = coo.to_csr();
        let terms = bipartite_hop_terms_reverse(&w, 2).unwrap();
        assert_eq!(terms[0].shape(), (5, 5));
    }
}
