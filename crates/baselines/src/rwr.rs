//! Random walk with restart (Personalized PageRank).
//!
//! The classic asymmetric proximity measure referenced in Section 2: a
//! walker restarts at the query node with probability `1 - alpha` and
//! otherwise follows a uniformly random out-edge of the flattened network.
//! Included as an additional baseline for the query experiments and as the
//! "whole-network, path-oblivious" contrast to path-constrained measures.

use crate::FlatGraph;
use hetesim_core::Result;
use hetesim_graph::{Hin, NodeRef};

/// Configuration for the power-iteration RWR solver.
#[derive(Debug, Clone, Copy)]
pub struct RwrConfig {
    /// Continuation probability `alpha` (restart probability is
    /// `1 - alpha`). Typical value 0.85.
    pub alpha: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig {
            alpha: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// Stationary RWR scores from a single typed source over the undirected
/// flattening of the network. Returns the full global score vector
/// (indexed by [`FlatGraph::global_index`]) together with the flattening.
pub fn rwr(hin: &Hin, source: NodeRef, cfg: RwrConfig) -> Result<(FlatGraph, Vec<f64>)> {
    let flat = FlatGraph::undirected(hin);
    let scores = rwr_on_flat(&flat, flat.global_index(source), cfg)?;
    Ok((flat, scores))
}

/// RWR on a pre-built flattening (lets callers amortize the flatten).
pub fn rwr_on_flat(flat: &FlatGraph, source: usize, cfg: RwrConfig) -> Result<Vec<f64>> {
    let n = flat.node_count();
    assert!(source < n, "source index out of range");
    // Column-stochastic walk matrix: follow out-edges uniformly. With the
    // undirected flattening, row- and column-normalization are transposes;
    // we iterate x' = alpha * P x + (1 - alpha) e_s with P = W_row_norm^T,
    // implemented as a vecmat against the row-normalized matrix.
    let p_row = flat.adjacency().row_normalized();
    let mut x = vec![0.0; n];
    x[source] = 1.0;
    let mut next = vec![0.0; n];
    for _ in 0..cfg.max_iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (&c, &w) in p_row.row_indices(r).iter().zip(p_row.row_values(r)) {
                next[c as usize] += cfg.alpha * xv * w;
            }
        }
        // Dangling mass and restart both return to the source.
        let mass: f64 = next.iter().sum();
        next[source] += 1.0 - mass;
        let delta: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetesim_graph::{HinBuilder, Schema};

    fn toy() -> Hin {
        let mut s = Schema::new();
        let a = s.add_type("author").unwrap();
        let p = s.add_type("paper").unwrap();
        let w = s.add_relation("writes", a, p).unwrap();
        let mut b = HinBuilder::new(s);
        b.add_edge_by_name(w, "Tom", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P1", 1.0).unwrap();
        b.add_edge_by_name(w, "Mary", "P2", 1.0).unwrap();
        b.add_edge_by_name(w, "Bob", "P3", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn scores_form_a_distribution() {
        let hin = toy();
        let a = hin.schema().type_id("author").unwrap();
        let (_, scores) = rwr(&hin, NodeRef::new(a, 0), RwrConfig::default()).unwrap();
        let s: f64 = scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!(scores.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn source_has_high_score_and_connectivity_matters() {
        let hin = toy();
        let a = hin.schema().type_id("author").unwrap();
        let (flat, scores) = rwr(&hin, NodeRef::new(a, 0), RwrConfig::default()).unwrap();
        let tom = flat.global_index(NodeRef::new(a, 0));
        let mary = flat.global_index(NodeRef::new(a, 1));
        let bob = flat.global_index(NodeRef::new(a, 2));
        // The source dominates; Mary (2 hops via P1) beats Bob
        // (disconnected component).
        assert!(scores[tom] > scores[mary]);
        assert!(scores[mary] > scores[bob]);
        assert_eq!(scores[bob], 0.0);
    }

    #[test]
    fn restart_weight_controls_locality() {
        let hin = toy();
        let a = hin.schema().type_id("author").unwrap();
        let sticky = RwrConfig {
            alpha: 0.1,
            ..RwrConfig::default()
        };
        let roamy = RwrConfig {
            alpha: 0.95,
            ..RwrConfig::default()
        };
        let (flat, s1) = rwr(&hin, NodeRef::new(a, 0), sticky).unwrap();
        let (_, s2) = rwr(&hin, NodeRef::new(a, 0), roamy).unwrap();
        let tom = flat.global_index(NodeRef::new(a, 0));
        assert!(s1[tom] > s2[tom]);
    }
}
