#!/usr/bin/env python3
"""Offline unit tests for tools/promlint.py (stdlib unittest, no network).

Run:  python3 tools/test_promlint.py
Each fixture is a small hand-written exposition exercising one rule, so a
promlint regression points at exactly the rule that broke.
"""

import unittest

from promlint import check_content_type, lint

VALID = """\
# HELP hetesim_requests_total HTTP requests fully handled.
# TYPE hetesim_requests_total counter
hetesim_requests_total 42
# HELP hetesim_queue_depth Connections waiting in the accept queue.
# TYPE hetesim_queue_depth gauge
hetesim_queue_depth 3
# HELP hetesim_latency_seconds End-to-end request latency.
# TYPE hetesim_latency_seconds histogram
hetesim_latency_seconds_bucket{le="0.1"} 10
hetesim_latency_seconds_bucket{le="1"} 15
hetesim_latency_seconds_bucket{le="+Inf"} 17
hetesim_latency_seconds_sum 4.2
hetesim_latency_seconds_count 17
"""


SLO_AND_HISTORY = """\
# HELP obs_ts_ticks_total Sampler ticks taken (one registry snapshot each).
# TYPE obs_ts_ticks_total counter
obs_ts_ticks_total 120
# HELP obs_ts_resident_bytes Approximate bytes held by the retained metrics time-series.
# TYPE obs_ts_resident_bytes gauge
obs_ts_resident_bytes 524288
# HELP obs_ts_samples_merged Fine samples folded into coarser tiers by downsampling.
# TYPE obs_ts_samples_merged gauge
obs_ts_samples_merged 36
# HELP obs_ts_samples_evicted Samples dropped to stay inside the byte budget.
# TYPE obs_ts_samples_evicted gauge
obs_ts_samples_evicted 0
# HELP obs_ts_sample_us Time one sampler tick spent snapshotting, diffing, and storing.
# TYPE obs_ts_sample_us histogram
obs_ts_sample_us_bucket{le="127"} 100
obs_ts_sample_us_bucket{le="1023"} 119
obs_ts_sample_us_bucket{le="+Inf"} 120
obs_ts_sample_us_sum 9000
obs_ts_sample_us_count 120
# HELP obs_slo_availability_burn_fast_permille Availability error-budget burn over the fast window, x1000.
# TYPE obs_slo_availability_burn_fast_permille gauge
obs_slo_availability_burn_fast_permille 0
# HELP obs_slo_availability_burn_slow_permille Availability error-budget burn over the slow window, x1000.
# TYPE obs_slo_availability_burn_slow_permille gauge
obs_slo_availability_burn_slow_permille 0
# HELP obs_slo_latency_burn_fast_permille Latency error-budget burn over the fast window, x1000.
# TYPE obs_slo_latency_burn_fast_permille gauge
obs_slo_latency_burn_fast_permille 14400
# HELP obs_slo_latency_burn_slow_permille Latency error-budget burn over the slow window, x1000.
# TYPE obs_slo_latency_burn_slow_permille gauge
obs_slo_latency_burn_slow_permille 3120
# HELP obs_slo_alert_state Worst SLO alert state: 0 = ok, 1 = warning, 2 = page.
# TYPE obs_slo_alert_state gauge
obs_slo_alert_state 1
"""


WORKER_UTILIZATION = """\
# HELP sparse_parallel_worker_busy_us Time an SpGEMM worker spent inside claimed chunks, per pass, in microseconds.
# TYPE sparse_parallel_worker_busy_us histogram
sparse_parallel_worker_busy_us_bucket{le="1023"} 2
sparse_parallel_worker_busy_us_bucket{le="4095"} 6
sparse_parallel_worker_busy_us_bucket{le="+Inf"} 8
sparse_parallel_worker_busy_us_sum 40000
sparse_parallel_worker_busy_us_count 8
# HELP sparse_parallel_worker_idle_us Time an SpGEMM worker spent waiting rather than multiplying, per pass, in microseconds.
# TYPE sparse_parallel_worker_idle_us histogram
sparse_parallel_worker_idle_us_bucket{le="+Inf"} 8
sparse_parallel_worker_idle_us_sum 120
sparse_parallel_worker_idle_us_count 8
# HELP sparse_parallel_imbalance Max/mean busy time across SpGEMM numeric-pass workers, in thousandths (1000 = perfectly balanced).
# TYPE sparse_parallel_imbalance gauge
sparse_parallel_imbalance 1136
"""


class LintValid(unittest.TestCase):
    def test_valid_exposition_is_clean(self):
        self.assertEqual(lint(VALID), [])

    def test_labels_and_timestamps_parse(self):
        text = (
            "# HELP hs_hits_total Cache hits.\n"
            "# TYPE hs_hits_total counter\n"
            'hs_hits_total{path="APA",node="a"} 7 1700000000\n'
        )
        self.assertEqual(lint(text), [])

    def test_worker_utilization_families_are_clean(self):
        # The shape hetesim-obs emits for the SpGEMM pool: busy/idle
        # log2-bucketed histograms plus the imbalance gauge, each with its
        # own # HELP line before # TYPE.
        self.assertEqual(lint(WORKER_UTILIZATION), [])

    def test_help_before_every_type_in_fixture(self):
        # Guards the fixtures themselves: one HELP per family, HELP first.
        for fixture in (WORKER_UTILIZATION, SLO_AND_HISTORY):
            lines = fixture.splitlines()
            for i, line in enumerate(lines):
                if line.startswith("# TYPE "):
                    family = line.split()[2]
                    self.assertTrue(
                        lines[i - 1].startswith(f"# HELP {family} "),
                        f"{family} lacks a preceding # HELP",
                    )

    def test_slo_and_history_families_are_clean(self):
        # The shape the serve sampler publishes: obs.ts.* ring health and
        # obs.slo.* burn-rate gauges, exactly as /metrics exposes them.
        self.assertEqual(lint(SLO_AND_HISTORY), [])


class LintHelpPresence(unittest.TestCase):
    def test_type_without_help_is_flagged(self):
        text = "# TYPE obs_ts_ticks_total counter\nobs_ts_ticks_total 1\n"
        errors = lint(text)
        self.assertTrue(any("no # HELP" in e for e in errors), errors)

    def test_help_without_type_is_flagged(self):
        text = "# HELP obs_ts_ticks_total Sampler ticks.\nobs_ts_ticks_total 1\n"
        errors = lint(text)
        self.assertTrue(any("no # TYPE" in e for e in errors), errors)

    def test_dropping_one_help_line_from_slo_fixture_is_flagged(self):
        broken = "\n".join(
            line
            for line in SLO_AND_HISTORY.splitlines()
            if not line.startswith("# HELP obs_slo_alert_state")
        )
        errors = lint(broken)
        self.assertTrue(
            any("'obs_slo_alert_state' has # TYPE but no # HELP" in e for e in errors),
            errors,
        )

    def test_malformed_and_duplicate_help_are_flagged(self):
        errors = lint("# HELP obs_ts_ticks_total\n")
        self.assertTrue(any("malformed # HELP" in e for e in errors), errors)
        errors = lint(
            "# HELP hs_x_total One.\n# HELP hs_x_total Two.\n"
            "# TYPE hs_x_total counter\nhs_x_total 1\n"
        )
        self.assertTrue(any("duplicate # HELP" in e for e in errors), errors)


class LintTypeLines(unittest.TestCase):
    def test_duplicate_type_family_is_flagged(self):
        text = (
            "# TYPE hs_hits_total counter\n"
            "hs_hits_total 1\n"
            "# TYPE hs_hits_total counter\n"
        )
        errors = lint(text)
        self.assertTrue(any("duplicate # TYPE" in e for e in errors), errors)

    def test_type_after_samples_is_flagged(self):
        text = "hs_x_total 1\n# TYPE hs_x_total counter\n"
        errors = lint(text)
        self.assertTrue(any("after its samples" in e for e in errors), errors)

    def test_unknown_type_is_flagged(self):
        errors = lint("# TYPE hs_x enum\nhs_x 1\n")
        self.assertTrue(any("unknown type" in e for e in errors), errors)

    def test_malformed_type_line_is_flagged(self):
        errors = lint("# TYPE hs_x\nhs_x 1\n")
        self.assertTrue(any("malformed # TYPE" in e for e in errors), errors)


class LintCounters(unittest.TestCase):
    def test_counter_missing_total_suffix_is_flagged(self):
        text = "# TYPE hs_hits counter\nhs_hits 5\n"
        errors = lint(text)
        self.assertTrue(any("does not end in _total" in e for e in errors), errors)

    def test_negative_counter_is_flagged(self):
        text = "# TYPE hs_hits_total counter\nhs_hits_total -1\n"
        errors = lint(text)
        self.assertTrue(any("is negative" in e for e in errors), errors)


class LintHistograms(unittest.TestCase):
    def test_missing_inf_bucket_is_flagged(self):
        text = (
            "# TYPE hs_lat histogram\n"
            'hs_lat_bucket{le="1"} 3\n'
            "hs_lat_sum 1.5\n"
            "hs_lat_count 3\n"
        )
        errors = lint(text)
        self.assertTrue(any("lacks a +Inf bucket" in e for e in errors), errors)

    def test_non_cumulative_buckets_are_flagged(self):
        text = (
            "# TYPE hs_lat histogram\n"
            'hs_lat_bucket{le="1"} 5\n'
            'hs_lat_bucket{le="+Inf"} 3\n'
            "hs_lat_sum 1.5\n"
            "hs_lat_count 3\n"
        )
        errors = lint(text)
        self.assertTrue(any("not cumulative" in e for e in errors), errors)

    def test_missing_sum_and_count_are_flagged(self):
        text = "# TYPE hs_lat histogram\n" 'hs_lat_bucket{le="+Inf"} 3\n'
        errors = lint(text)
        self.assertTrue(any("lacks _count" in e for e in errors), errors)
        self.assertTrue(any("lacks _sum" in e for e in errors), errors)

    def test_inf_bucket_count_mismatch_is_flagged(self):
        text = (
            "# TYPE hs_lat histogram\n"
            'hs_lat_bucket{le="+Inf"} 3\n'
            "hs_lat_sum 1.5\n"
            "hs_lat_count 4\n"
        )
        errors = lint(text)
        self.assertTrue(any("!= _count" in e for e in errors), errors)

    def test_bucket_without_le_label_is_flagged(self):
        text = (
            "# TYPE hs_lat histogram\n"
            'hs_lat_bucket{quantile="0.5"} 3\n'
            "hs_lat_sum 1.5\n"
            "hs_lat_count 3\n"
        )
        errors = lint(text)
        self.assertTrue(any("lacks an le label" in e for e in errors), errors)


class LintSamples(unittest.TestCase):
    def test_malformed_label_set_is_flagged(self):
        errors = lint("hs_x{label=unquoted} 1\n")
        self.assertTrue(any("malformed label set" in e for e in errors), errors)

    def test_non_float_value_is_flagged(self):
        errors = lint("hs_x many\n")
        self.assertTrue(any("is not a float" in e for e in errors), errors)

    def test_unparsable_line_is_flagged(self):
        errors = lint("!!! not a sample\n")
        self.assertTrue(any("unparsable sample line" in e for e in errors), errors)


class ContentType(unittest.TestCase):
    def test_exact_exposition_content_type_is_clean(self):
        self.assertEqual(
            check_content_type("text/plain; version=0.0.4; charset=utf-8"), []
        )
        self.assertEqual(check_content_type("text/plain; version=0.0.4"), [])

    def test_wrong_media_type_is_flagged(self):
        errors = check_content_type("application/json")
        self.assertTrue(any("not text/plain" in e for e in errors), errors)

    def test_missing_version_is_flagged(self):
        errors = check_content_type("text/plain")
        self.assertTrue(any("lacks a version" in e for e in errors), errors)

    def test_wrong_version_is_flagged(self):
        errors = check_content_type("text/plain; version=1.0.0")
        self.assertTrue(any("is not 0.0.4" in e for e in errors), errors)

    def test_wrong_charset_is_flagged(self):
        errors = check_content_type("text/plain; version=0.0.4; charset=latin-1")
        self.assertTrue(any("charset" in e for e in errors), errors)


if __name__ == "__main__":
    unittest.main()
