#!/usr/bin/env python3
"""Minimal Prometheus text-exposition (version 0.0.4) lint, stdlib only.

Reads the exposition from stdin (or a file argument) and checks:

  * metric and label names match the Prometheus grammar;
  * every sample parses as ``name{labels} value``, value a float;
  * ``# TYPE`` lines are well-formed and name a known type, appear at
    most once per metric, and precede that metric's samples;
  * every family carries both ``# HELP`` and ``# TYPE`` — a family with
    one but not the other is flagged;
  * counter sample names end in ``_total`` (per current naming practice);
  * histograms are complete and coherent: ``_bucket`` samples carry an
    ``le`` label, cumulative counts are monotone in ``le`` order, a
    ``+Inf`` bucket exists, and its count equals ``_count``, with
    ``_sum``/``_count`` both present.

With ``--content-type VALUE`` the server's Content-Type header is checked
against the text-exposition contract (``text/plain`` with
``version=0.0.4``; charset, if present, must be utf-8).

Exit status 0 when clean; 1 with one line per problem otherwise.

Usage:  curl -s host:port/metrics | python3 tools/promlint.py
        python3 tools/promlint.py exposition.txt
        python3 tools/promlint.py --content-type "$ct" exposition.txt
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_name(sample_name: str) -> str:
    """The metric family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_le(value: str) -> float:
    return float("inf") if value == "+Inf" else float(value)


def lint(text: str):
    errors = []
    types = {}  # family -> declared type
    helps = {}  # family -> True once a # HELP line was seen
    seen_samples = {}  # family -> True once a sample was emitted
    # histogram family -> {"buckets": [(le, count)], "sum": x, "count": n}
    histograms = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue

        def err(msg):
            errors.append(f"line {lineno}: {msg}: {line!r}")

        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    err("malformed # TYPE line")
                    continue
                _, _, name, typ = parts
                if not METRIC_NAME.match(name):
                    err(f"bad metric name {name!r} in # TYPE")
                if typ not in TYPES:
                    err(f"unknown type {typ!r}")
                if name in types:
                    err(f"duplicate # TYPE for {name!r}")
                if name in seen_samples:
                    err(f"# TYPE for {name!r} after its samples")
                types[name] = typ
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 4:
                    err("malformed # HELP line (need a name and help text)")
                    continue
                name = parts[2]
                if not METRIC_NAME.match(name):
                    err(f"bad metric name {name!r} in # HELP")
                if name in helps:
                    err(f"duplicate # HELP for {name!r}")
                helps[name] = True
            # Other comments pass through unchecked.
            continue

        m = SAMPLE.match(line)
        if not m:
            err("unparsable sample line")
            continue
        name = m.group("name")
        family = base_name(name)
        seen_samples[family] = True
        seen_samples[name] = True

        labels = {}
        raw_labels = m.group("labels")
        if raw_labels is not None:
            consumed = LABEL.findall(raw_labels)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            stripped = raw_labels.rstrip(",")
            if rebuilt != stripped:
                err(f"malformed label set {raw_labels!r}")
            for key, value in consumed:
                if not LABEL_NAME.match(key):
                    err(f"bad label name {key!r}")
                labels[key] = value

        try:
            value = float(m.group("value"))
        except ValueError:
            err(f"sample value {m.group('value')!r} is not a float")
            continue

        declared = types.get(family) or types.get(name)
        if declared == "counter":
            if not name.endswith("_total"):
                err(f"counter sample {name!r} does not end in _total")
            if value < 0:
                err(f"counter {name!r} is negative")
        if declared == "histogram":
            h = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    err(f"histogram bucket {name!r} lacks an le label")
                else:
                    try:
                        h["buckets"].append((parse_le(labels["le"]), value))
                    except ValueError:
                        err(f"unparsable le value {labels['le']!r}")
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value
            else:
                err(f"histogram family {family!r} has stray sample {name!r}")

    for family, h in sorted(histograms.items()):
        if not h["buckets"]:
            errors.append(f"histogram {family!r} has no buckets")
            continue
        les = [le for le, _ in h["buckets"]]
        counts = [c for _, c in h["buckets"]]
        if les != sorted(les):
            errors.append(f"histogram {family!r} buckets out of le order")
        for (le_a, c_a), (le_b, c_b) in zip(h["buckets"], h["buckets"][1:]):
            if c_b < c_a:
                errors.append(
                    f"histogram {family!r} not cumulative: "
                    f"bucket le={le_b} count {c_b} < le={le_a} count {c_a}"
                )
        if les[-1] != float("inf"):
            errors.append(f"histogram {family!r} lacks a +Inf bucket")
        if h["count"] is None:
            errors.append(f"histogram {family!r} lacks _count")
        elif les[-1] == float("inf") and counts[-1] != h["count"]:
            errors.append(
                f"histogram {family!r}: +Inf bucket {counts[-1]} != _count {h['count']}"
            )
        if h["sum"] is None:
            errors.append(f"histogram {family!r} lacks _sum")

    # Every family must carry both metadata lines: HELP without TYPE (or
    # the reverse) leaves scrapers guessing what the series means.
    for family in sorted(types):
        if family not in helps:
            errors.append(f"family {family!r} has # TYPE but no # HELP")
    for family in sorted(helps):
        if family not in types:
            errors.append(f"family {family!r} has # HELP but no # TYPE")

    return errors


def check_content_type(value: str):
    """Errors for a /metrics Content-Type header value, [] when conformant."""
    errors = []
    parts = [p.strip() for p in value.split(";")]
    media = parts[0] if parts else ""
    if media.lower() != "text/plain":
        errors.append(f"content-type media type {media!r} is not text/plain")
    params = {}
    for p in parts[1:]:
        if "=" in p:
            k, v = p.split("=", 1)
            params[k.strip().lower()] = v.strip()
        elif p:
            errors.append(f"content-type has malformed parameter {p!r}")
    version = params.get("version")
    if version is None:
        errors.append("content-type lacks a version parameter (expected version=0.0.4)")
    elif version != "0.0.4":
        errors.append(f"content-type version {version!r} is not 0.0.4")
    charset = params.get("charset")
    if charset is not None and charset.lower() != "utf-8":
        errors.append(f"content-type charset {charset!r} is not utf-8")
    return errors


def main() -> int:
    args = sys.argv[1:]
    content_type = None
    if "--content-type" in args:
        i = args.index("--content-type")
        if i + 1 >= len(args):
            print("promlint: --content-type needs a value", file=sys.stderr)
            return 1
        content_type = args[i + 1]
        del args[i : i + 2]
    if args:
        with open(args[0], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("promlint: empty exposition", file=sys.stderr)
        return 1
    errors = lint(text)
    if content_type is not None:
        errors.extend(check_content_type(content_type))
    for e in errors:
        print(f"promlint: {e}", file=sys.stderr)
    if not errors:
        families = sum(1 for line in text.splitlines() if line.startswith("# TYPE"))
        print(f"promlint: OK ({families} metric families)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
