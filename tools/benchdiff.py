#!/usr/bin/env python3
"""Diff two BENCH_*.json files and flag regressions.

Usage:
    benchdiff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Walks both JSON trees in parallel and reports every numeric leaf that
moved, as `path: baseline -> candidate (+X.X%)`. Each metric's direction
is inferred from its name:

  * higher is worse (regression when it grows): names containing `ms`,
    `latency`, `_us`, `imbalance`, `shed`, `timeouts`, `failures`,
    `evictions`, `burn` (SLO burn rates from the `slo` block: burning
    error budget faster is strictly worse), `resident_bytes` (retained
    memory in the `history`/`cache` blocks: growth past the threshold
    means the process got fatter, while `budget_bytes` stays a
    configuration echo);
  * lower is worse (regression when it shrinks): names containing
    `speedup`, `throughput`, `rps`, `hit_rate`, or equal to `ok`;
  * everything else (sizes, counts, configuration echoes) is
    informational only and never fails the diff.

Exits 1 when any directional metric regressed by more than `--threshold`
percent (default 10), else 0. Missing counterparts (a key present on one
side only) are reported but never fatal: bench files legitimately gain
fields between versions.

Degraded runs: when either file carries a top-level `"degraded": true`
(the bench ran with fewer cores than its largest requested thread
count), parallelism-sensitive metrics — speedups, imbalance, per-thread
run times, worker busy/idle splits — are demoted to informational: the
deltas are still printed but cannot fail the diff, and a warning is
emitted. Machine-independent serial timings stay gated.

stdlib-only on purpose — CI runs it with a bare python3.
"""

import argparse
import json
import sys

# Substrings that classify a metric name; checked against the last
# path segment, lowercased. Order matters: the first match wins, and
# lower-is-worse is checked first so "throughput_ms_avg"-style names
# would classify by the more specific token list below if ever added.
LOWER_IS_WORSE = ("speedup", "throughput", "rps", "hit_rate")
HIGHER_IS_WORSE = (
    "ms",
    "latency",
    "_us",
    "imbalance",
    "shed",
    "timeouts",
    "failures",
    "evictions",
    # PR 9's serve-load additions: `slo.*.fast_burn`/`slow_burn` and
    # `history.resident_bytes`/`cache.resident_bytes`. The full
    # "resident_bytes" token (not "bytes") keeps `budget_bytes` and
    # matrix-size echoes neutral.
    "burn",
    "resident_bytes",
)
# Exact last-segment names with a direction.
LOWER_IS_WORSE_EXACT = ("ok",)


def direction(path):
    """-1 if lower values regress, +1 if higher values regress, 0 neutral."""
    lowered = path.lower()
    # Configuration echoes and matrix shapes describe the run, they don't
    # measure it: never directional, whatever their names contain.
    if lowered.startswith(("config.", "lhs.", "rhs.")):
        return 0
    leaf = lowered.rsplit(".", 1)[-1]
    # Strip an array index suffix like "runs[2]" -> "runs".
    if "[" in leaf:
        leaf = leaf.split("[", 1)[0]
    # The leaf name decides when it can (`p95` can't — fall back to the
    # whole path, so `latency_ms.p95` still reads as a latency).
    for name in (leaf, lowered):
        if name in LOWER_IS_WORSE_EXACT or any(t in name for t in LOWER_IS_WORSE):
            return -1
        if any(t in name for t in HIGHER_IS_WORSE):
            return +1
    return 0


def parallelism_sensitive(path):
    """True for metrics that only mean something with real cores behind
    them: speedup curves, worker-balance gauges, and the per-thread run
    times they are derived from. Serial timings are not included — they
    are one-core numbers wherever they run."""
    lowered = path.lower()
    if "speedup" in lowered or "imbalance" in lowered or "worker_" in lowered:
        return True
    leaf = lowered.rsplit(".", 1)[-1]
    return lowered.startswith("runs[") and leaf == "ms"


def walk(base, cand, path, out):
    """Collects (path, base, cand) numeric pairs and one-sided keys."""
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            sub = f"{path}.{key}" if path else key
            if key not in base:
                out["only_candidate"].append(sub)
            elif key not in cand:
                out["only_baseline"].append(sub)
            else:
                walk(base[key], cand[key], sub, out)
    elif isinstance(base, list) and isinstance(cand, list):
        for i in range(max(len(base), len(cand))):
            sub = f"{path}[{i}]"
            if i >= len(base):
                out["only_candidate"].append(sub)
            elif i >= len(cand):
                out["only_baseline"].append(sub)
            else:
                walk(base[i], cand[i], sub, out)
    elif isinstance(base, bool) or isinstance(cand, bool):
        # bool is an int subclass; treat as non-numeric.
        pass
    elif isinstance(base, (int, float)) and isinstance(cand, (int, float)):
        out["pairs"].append((path, float(base), float(cand)))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression tolerance in percent (default 10)",
    )
    args = ap.parse_args(argv)

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    out = {"pairs": [], "only_baseline": [], "only_candidate": []}
    walk(base, cand, "", out)

    degraded = bool(base.get("degraded")) or bool(cand.get("degraded"))
    if degraded:
        sides = [
            name
            for name, doc in (("baseline", base), ("candidate", cand))
            if doc.get("degraded")
        ]
        print(
            f"warning: degraded run ({', '.join(sides)}): fewer cores than "
            "requested threads; speedup/imbalance/per-thread timings are "
            "informational only"
        )

    regressions = []
    for path, b, c in out["pairs"]:
        if c == b:
            continue
        pct = ((c - b) / abs(b) * 100.0) if b != 0 else float("inf")
        d = 0 if degraded and parallelism_sensitive(path) else direction(path)
        regressed = d != 0 and (
            (d > 0 and pct > args.threshold) or (d < 0 and pct < -args.threshold)
        )
        marker = " REGRESSION" if regressed else ""
        pct_text = f"{pct:+.1f}%" if pct != float("inf") else "new-nonzero"
        print(f"{path}: {b:g} -> {c:g} ({pct_text}){marker}")
        if regressed:
            regressions.append(path)

    for path in out["only_baseline"]:
        print(f"{path}: only in baseline")
    for path in out["only_candidate"]:
        print(f"{path}: only in candidate")

    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed past "
            f"{args.threshold:g}%: {', '.join(regressions)}"
        )
        return 1
    print(f"\nno regressions past {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
