#!/usr/bin/env python3
"""Unit tests for benchdiff.py (stdlib only; run with python3)."""

import contextlib
import io
import json
import os
import tempfile
import unittest

import benchdiff


def run_diff(base, cand, threshold=10.0):
    """Runs benchdiff.main on two dicts; returns (exit_code, output)."""
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cand.json")
        with open(bp, "w") as f:
            json.dump(base, f)
        with open(cp, "w") as f:
            json.dump(cand, f)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = benchdiff.main([bp, cp, "--threshold", str(threshold)])
        return code, out.getvalue()


class Direction(unittest.TestCase):
    def test_higher_is_worse_names(self):
        for path in (
            "serial_ms",
            "latency_ms.p95",
            "runs[0].ms",
            "stage_p95_us.core",
            "runs[1].imbalance",
            "requests.timeouts",
            "requests.failures",
            "cache.evictions",
            "shed_rate",
        ):
            self.assertEqual(benchdiff.direction(path), +1, path)

    def test_lower_is_worse_names(self):
        for path in (
            "runs[0].speedup",
            "throughput_rps",
            "cache.hit_rate",
            "requests.ok",
        ):
            self.assertEqual(benchdiff.direction(path), -1, path)

    def test_neutral_names(self):
        for path in ("flops", "product_nnz", "lhs.rows", "config.clients"):
            self.assertEqual(benchdiff.direction(path), 0, path)

    def test_burn_rates_are_higher_is_worse(self):
        for path in (
            "slo.availability.fast_burn",
            "slo.availability.slow_burn",
            "slo.latency.fast_burn",
            "slo.latency.slow_burn",
        ):
            self.assertEqual(benchdiff.direction(path), +1, path)

    def test_resident_bytes_is_higher_is_worse(self):
        for path in ("history.resident_bytes", "cache.resident_bytes"):
            self.assertEqual(benchdiff.direction(path), +1, path)
        # Budget echoes and matrix sizes stay neutral: the token is the
        # full "resident_bytes", never a bare "bytes".
        for path in ("history.budget_bytes", "cache.budget_bytes"):
            self.assertEqual(benchdiff.direction(path), 0, path)


class Diffing(unittest.TestCase):
    def test_identical_files_pass(self):
        doc = {"serial_ms": 10.0, "runs": [{"threads": 2, "ms": 5.0}]}
        code, out = run_diff(doc, doc)
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_slower_ms_past_threshold_fails(self):
        code, out = run_diff({"serial_ms": 10.0}, {"serial_ms": 12.0})
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("serial_ms", out)

    def test_slower_ms_within_threshold_passes(self):
        code, out = run_diff({"serial_ms": 10.0}, {"serial_ms": 10.5})
        self.assertEqual(code, 0)
        # The delta is still reported, just not fatal.
        self.assertIn("serial_ms: 10 -> 10.5", out)

    def test_faster_ms_never_fails(self):
        code, _ = run_diff({"serial_ms": 10.0}, {"serial_ms": 1.0})
        self.assertEqual(code, 0)

    def test_lower_speedup_fails(self):
        base = {"runs": [{"threads": 4, "speedup": 3.0}]}
        cand = {"runs": [{"threads": 4, "speedup": 2.0}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("runs[0].speedup", out)

    def test_neutral_metric_never_fails(self):
        code, _ = run_diff({"flops": 100}, {"flops": 100000})
        self.assertEqual(code, 0)

    def test_one_sided_keys_reported_not_fatal(self):
        base = {"serial_ms": 10.0}
        cand = {"serial_ms": 10.0, "runs": [{"worker_busy_us": [1, 2]}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("only in candidate", out)

    def test_custom_threshold(self):
        code, _ = run_diff({"serial_ms": 10.0}, {"serial_ms": 12.0}, threshold=25)
        self.assertEqual(code, 0)
        code, _ = run_diff({"serial_ms": 10.0}, {"serial_ms": 13.0}, threshold=25)
        self.assertEqual(code, 1)

    def test_degraded_candidate_neutralizes_speedup(self):
        base = {"degraded": False, "runs": [{"threads": 4, "speedup": 3.0}]}
        cand = {"degraded": True, "runs": [{"threads": 4, "speedup": 1.0}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("warning: degraded run (candidate)", out)
        self.assertIn("runs[0].speedup", out)  # still reported
        self.assertNotIn("REGRESSION", out)

    def test_degraded_baseline_also_warns(self):
        base = {"degraded": True, "runs": [{"imbalance": 1.0, "ms": 5.0}]}
        cand = {"degraded": False, "runs": [{"imbalance": 2.0, "ms": 9.0}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("warning: degraded run (baseline)", out)

    def test_degraded_still_gates_serial_ms(self):
        base = {"degraded": True, "serial_ms": 10.0}
        cand = {"degraded": True, "serial_ms": 20.0}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("serial_ms", out)
        self.assertIn("REGRESSION", out)

    def test_non_degraded_files_unchanged_behavior(self):
        base = {"degraded": False, "runs": [{"speedup": 3.0}]}
        cand = {"degraded": False, "runs": [{"speedup": 1.0}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertNotIn("warning: degraded", out)

    def test_parallelism_sensitive_classifier(self):
        for path in (
            "runs[0].speedup",
            "runs[2].imbalance",
            "runs[1].ms",
            "runs[0].worker_busy_us[3]",
        ):
            self.assertTrue(benchdiff.parallelism_sensitive(path), path)
        for path in ("serial_ms", "reference_ms", "flops", "runs[0].dense_rows"):
            self.assertFalse(benchdiff.parallelism_sensitive(path), path)

    def test_burn_regression_fails_diff(self):
        base = {"slo": {"latency": {"target": 0.05, "fast_burn": 0.4}}}
        cand = {"slo": {"latency": {"target": 0.05, "fast_burn": 2.0}}}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("slo.latency.fast_burn", out)
        self.assertIn("REGRESSION", out)

    def test_burn_improvement_passes(self):
        base = {"slo": {"availability": {"slow_burn": 2.0}}}
        cand = {"slo": {"availability": {"slow_burn": 0.1}}}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_resident_bytes_growth_fails_budget_echo_does_not(self):
        base = {"history": {"resident_bytes": 1000, "budget_bytes": 65536}}
        cand = {"history": {"resident_bytes": 5000, "budget_bytes": 262144}}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("history.resident_bytes", out)
        # The budget quadrupled too, but it is configuration, not a metric.
        self.assertNotIn("budget_bytes REGRESSION", out)
        self.assertEqual(out.count("REGRESSION"), 1)

    def test_slo_block_only_in_candidate_is_not_fatal(self):
        # Old baselines predate PR 9's slo/history blocks; gaining them
        # must never fail the diff.
        base = {"serial_ms": 10.0}
        cand = {
            "serial_ms": 10.0,
            "slo": {"latency": {"fast_burn": 0.2}},
            "history": {"resident_bytes": 4096},
        }
        code, out = run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("only in candidate", out)

    def test_nested_arrays_and_paths(self):
        base = {"runs": [{"ms": 1.0}, {"ms": 2.0}]}
        cand = {"runs": [{"ms": 1.0}, {"ms": 4.0}]}
        code, out = run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("runs[1].ms", out)
        self.assertNotIn("runs[0].ms: ", out.split("REGRESSION")[1])


if __name__ == "__main__":
    unittest.main()
