//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! patches `criterion` with this minimal wall-clock harness. It supports the
//! subset of the API the `hetesim-bench` benchmarks use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!` — and honors the
//! `--test` flag cargo passes when bench targets run under `cargo test`
//! (each benchmark executes exactly once, untimed).
//!
//! Statistics are intentionally simple: after a warm-up, each benchmark is
//! sampled `sample_size` times and the median, minimum and maximum
//! per-iteration times are printed. No plots, no baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// `Some(duration)` after `iter` ran in timing mode.
    sample: Option<Duration>,
    /// Iterations per sample, chosen during calibration.
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times (once in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.sample = Some(Duration::ZERO);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.sample = Some(start.elapsed() / self.iters.max(1) as u32);
    }
}

/// Parameterized benchmark name (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A name of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A name that is just the parameter (the group supplies the function).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 10,
        }
    }
}

fn run_one(name: &str, test_mode: bool, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            sample: None,
            iters: 1,
            test_mode: true,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Calibrate the per-sample iteration count so one sample takes ≳1 ms,
    // then collect the samples.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            sample: None,
            iters,
            test_mode: false,
        };
        f(&mut b);
        let per_iter = b.sample.expect("benchmark closure must call iter()");
        if per_iter * iters as u32 >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            sample: None,
            iters,
            test_mode: false,
        };
        f(&mut b);
        samples.push(b.sample.expect("benchmark closure must call iter()"));
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "bench {name:<48} median {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples x {} iters)",
        median,
        samples[0],
        samples[samples.len() - 1],
        samples.len(),
        iters
    );
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.test_mode, self.default_sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.test_mode, self.effective_samples(), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(
            &full,
            self.criterion.test_mode,
            self.effective_samples(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("t", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut count = 0;
        g.bench_with_input(BenchmarkId::new("f", 42), &3, |b, &x| b.iter(|| count += x));
        g.finish();
        assert!(count >= 3);
    }

    #[test]
    fn timing_mode_measures() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 2,
        };
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }
}
