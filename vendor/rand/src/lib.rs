//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace patches `rand` with this crate. It reimplements exactly the
//! rand 0.9 API surface the workspace uses — `StdRng`, `SeedableRng`,
//! `Rng::random`, `Rng::random_range` — on top of xoshiro256++ seeded via
//! SplitMix64. Streams are deterministic per seed but are **not** the same
//! streams as upstream `rand`; nothing in the workspace depends on the
//! upstream bit sequence, only on seed-reproducibility.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling front-end, mirroring the `rand 0.9` method names.
pub trait Rng: RngCore {
    /// A value sampled from the "standard" distribution of `T`
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly sampled from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every word is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Two's-complement arithmetic in the unsigned mirror type
                // handles ranges wider than the signed maximum.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                ((self.start as $u).wrapping_add((rng.next_u64() % span) as $u)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is in range.
                    return rng.next_u64() as $t;
                }
                ((lo as $u).wrapping_add((rng.next_u64() % span) as $u)) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 so that nearby seeds yield unrelated
    /// streams. Not the upstream `StdRng` algorithm (ChaCha12); only
    /// seed-determinism is relied upon here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(1u8..=9);
            assert!((1..=9).contains(&i));
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let si = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&si));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
