//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! patches `proptest` with this crate. It implements the subset of the API
//! the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy` with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `collection::vec`, `any::<T>()` and `ProptestConfig`
//! — as plain random-input testing.
//!
//! Differences from upstream: no shrinking (a failing case reports its case
//! number and seed instead of a minimized input), no persistence files, and
//! the default case count is 64. Each generated `#[test]` is deterministic:
//! the RNG is seeded from the test function's name.

use std::fmt;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from arbitrary bytes (the test name).
    pub fn from_name(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A failed property observation; returned (via `prop_assert!`) from the
/// closure body the `proptest!` macro generates.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// Width computed in the unsigned mirror type so full-width and signed
// ranges (e.g. `0u64..=u64::MAX`, `i64::MIN..0`) never overflow.
macro_rules! impl_int_strategies {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                ((self.start as $u).wrapping_add(rng.below(span) as $u)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is in range.
                    return rng.next_u64() as $t;
                }
                ((lo as $u).wrapping_add(rng.below(span) as $u)) as $t
            }
        }
    )*};
}

impl_int_strategies!(
    usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    i64 => u64, i32 => u32, i16 => u16, i8 => u8
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact size, a `Range`, or a
    /// `RangeInclusive`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Declares property tests.
///
/// Accepts the upstream surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0..10usize, v in collection::vec(0.0..1.0f64, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __proptest_rng =
                        $crate::TestRng::from_name(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Upstream proptest redraws the case; this shim simply counts it as
/// passing, which preserves soundness (no false failures) at the cost of
/// running fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3..9usize, y in 1u8..=4, f in -1.0..1.0f64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0..5usize, 2..7),
                                 exact in collection::vec(any::<bool>(), 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn flat_map_dependent(pair in (1..6usize).prop_flat_map(|n| {
            (collection::vec(0..n, 1..4), Just(n))
        })) {
            let (v, n) = pair;
            prop_assert!(v.iter().all(|&x| x < n), "elements below {n}: {v:?}");
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0..10usize) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("x was"), "got: {msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |case| {
            let mut rng = TestRng::from_name("t", case);
            (0..10usize).generate(&mut rng)
        };
        assert_eq!(gen(3), gen(3));
    }
}
