//! The Section 4.6 deployment pattern: off-line computation, on-line
//! serving.
//!
//! "For frequently-used relevance paths, the relatedness matrix can be
//! calculated off-line. The on-line search will be very fast, since it
//! only needs to locate the row and column in the matrix."
//!
//! This example plays both roles: the *off-line job* computes the full
//! `A-P-V-C` HeteSim matrix and exports it as a MatrixMarket file (the
//! format scipy/Julia/MATLAB read directly); the *on-line service* loads
//! the file back and answers queries with row lookups — verifying the
//! round trip reproduces the engine's answers exactly.
//!
//! Run with: `cargo run --release --example offline_pipeline`

use hetesim::data::acm::{generate, AcmConfig};
use hetesim::prelude::*;
use hetesim::sparse::io::{read_matrix_market, write_matrix_market};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acm = generate(&AcmConfig::default());
    let hin = &acm.hin;
    let apvc = MetaPath::parse(hin.schema(), "APVC")?;

    // --- Off-line job ------------------------------------------------------
    let t0 = Instant::now();
    let engine = HeteSimEngine::with_threads(hin, 4);
    let matrix = engine.matrix(&apvc)?;
    let offline_ms = t0.elapsed().as_secs_f64() * 1e3;
    let path = std::env::temp_dir().join(format!("hetesim-apvc-{}.mtx", std::process::id()));
    let file = std::fs::File::create(&path)?;
    write_matrix_market(&matrix, file)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "off-line: {}x{} matrix ({} nnz) computed in {offline_ms:.0} ms, exported {} KiB",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz(),
        bytes / 1024
    );

    // --- On-line service ---------------------------------------------------
    let served = read_matrix_market(std::fs::File::open(&path)?)?;
    assert_eq!(served.shape(), matrix.shape());

    let star = acm.author_id(&acm.star_concentrated);
    let t1 = Instant::now();
    let mut lookups = 0u64;
    for c in 0..hin.node_count(acm.conferences) {
        let score = served.get(star as usize, c);
        let reference = engine.pair(&apvc, star, c as u32)?;
        assert!(
            (score - reference).abs() < 1e-9,
            "round trip must preserve scores"
        );
        lookups += 1;
    }
    let online_us = t1.elapsed().as_secs_f64() * 1e6 / lookups as f64;
    println!("on-line: {lookups} lookups served at ~{online_us:.1} µs each (incl. verification)");

    println!(
        "\ntop conferences for {} from the served matrix:",
        acm.star_concentrated
    );
    let row: Vec<f64> = (0..served.ncols())
        .map(|c| served.get(star as usize, c))
        .collect();
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
    for &c in order.iter().take(3) {
        println!(
            "  {:<10} {:.4}",
            hin.node_name(acm.conferences, c as u32),
            row[c]
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
