//! Clustering with HeteSim similarity matrices (the paper's Section 5.4,
//! Table 6).
//!
//! Because HeteSim is symmetric and semi-metric, its relevance matrix can
//! feed a clustering algorithm directly. This example clusters the 20
//! conferences of the synthetic DBLP-like network with Normalized Cut over
//! the `C-P-A-P-C` HeteSim matrix and scores the result against the four
//! planted research areas with NMI, comparing against PathSim.
//!
//! Run with: `cargo run --release --example clustering`

use hetesim::data::dblp::{generate, DblpConfig, AREAS, CONFERENCES};
use hetesim::ml::metrics::nmi;
use hetesim::ml::spectral::{normalized_cut, SpectralConfig};
use hetesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dblp = generate(&DblpConfig::default());
    let hin = &dblp.hin;
    let cpapc = MetaPath::parse(hin.schema(), "CPAPC")?;
    let k = AREAS.len();
    let cfg = SpectralConfig::default();

    let engine = HeteSimEngine::with_threads(hin, 4);
    let hs_matrix = engine.matrix(&cpapc)?;
    let hs_labels = normalized_cut(&hs_matrix, k, &cfg);
    let hs_nmi = nmi(&hs_labels, &dblp.conference_area);

    let pathsim = PathSim::new(hin);
    let ps_matrix = pathsim.relevance_matrix(&cpapc)?;
    let ps_labels = normalized_cut(&ps_matrix, k, &cfg);
    let ps_nmi = nmi(&ps_labels, &dblp.conference_area);

    println!("Conference clustering over C-P-A-P-C (4 planted areas):\n");
    println!(
        "{:<10} {:<16} {:>8} {:>8}",
        "conference", "planted area", "HeteSim", "PathSim"
    );
    for (ci, (name, _)) in CONFERENCES.iter().enumerate() {
        println!(
            "{:<10} {:<16} {:>8} {:>8}",
            name, AREAS[dblp.conference_area[ci]], hs_labels[ci], ps_labels[ci]
        );
    }
    println!("\nNMI vs planted areas:  HeteSim {hs_nmi:.4}   PathSim {ps_nmi:.4}");
    println!("(paper, real DBLP:     HeteSim 0.7683   PathSim 0.8162 — both high)");
    assert!(hs_nmi > 0.5, "HeteSim clustering should recover the areas");
    Ok(())
}
