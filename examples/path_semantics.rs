//! Path semantics (the paper's Task 3, Tables 4 and 7 and Figure 7).
//!
//! Different relevance paths carry different meanings, and HeteSim's
//! rankings change with them. Along `A-P-V-C-V-P-A` ("authors publishing
//! in the same conferences") HeteSim matches *distributions*: the most
//! related author to the concentrated star is the star itself, then
//! authors with similarly concentrated venue profiles — not the
//! highest-volume authors PCRW surfaces. Along `C-V-P-A` vs `C-V-P-A-P-A`
//! a conference's top authors shift from "publishes most here" to "has the
//! most active co-author group".
//!
//! Run with: `cargo run --release --example path_semantics`

use hetesim::data::acm::{generate, AcmConfig, CONFERENCES};
use hetesim::prelude::*;

fn print_ranking(title: &str, names: &[(String, f64)]) {
    println!("\n{title}");
    for (i, (name, score)) in names.iter().enumerate() {
        println!("  {}. {:<24} {:.4}", i + 1, name, score);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acm = generate(&AcmConfig::default());
    let hin = &acm.hin;
    let engine = HeteSimEngine::with_threads(hin, 4);
    let pcrw = Pcrw::new(hin);
    let star = acm.author_id(&acm.star_concentrated);

    // --- Table 4: same-conference authors under three measures ------------
    let path = MetaPath::parse(hin.schema(), "APVCVPA")?;
    let resolve = |ranked: &[Ranked], k: usize| -> Vec<(String, f64)> {
        ranked
            .iter()
            .take(k)
            .map(|r| (hin.node_name(acm.authors, r.index).to_string(), r.score))
            .collect()
    };

    let hs = resolve(&engine.top_k(&path, star, 10)?, 10);
    print_ranking(
        &format!(
            "HeteSim: top authors related to {} (APVCVPA)",
            acm.star_concentrated
        ),
        &hs,
    );
    assert_eq!(
        hs[0].0, acm.star_concentrated,
        "HeteSim top-1 is the star itself"
    );

    let ps = PathSim::new(hin);
    print_ranking(
        "PathSim (volume-balanced peers):",
        &resolve(&ps.rank_targets(&path, star)?, 10),
    );
    print_ranking(
        "PCRW (reach-probability, favors high-volume authors):",
        &resolve(&pcrw.rank_targets(&path, star)?, 10),
    );

    // --- Figure 7: why — the underlying walk distributions ----------------
    let apvc = MetaPath::parse(hin.schema(), "APVC")?;
    println!("\nAPVC walk distributions over the 14 conferences:");
    let mut subjects = vec![acm.star_concentrated.clone()];
    subjects.extend(acm.broad_stars.iter().cloned());
    for name in &subjects {
        let dist = pcrw.walk_distribution(&apvc, acm.author_id(name))?;
        let head: Vec<String> = dist.iter().map(|v| format!("{v:.2}")).collect();
        println!("  {:<20} [{}]", name, head.join(" "));
    }
    println!("  conferences:         [{}]", CONFERENCES.join(" "));

    // --- Table 7: CVPA vs CVPAPA ------------------------------------------
    let kdd = acm.conference_id("KDD");
    for text in ["CVPA", "CVPAPA"] {
        let p = MetaPath::parse(hin.schema(), text)?;
        let ranked = engine.top_k(&p, kdd, 10)?;
        print_ranking(
            &format!(
                "Top authors for KDD along {text} ({})",
                if text == "CVPA" {
                    "own publications"
                } else {
                    "co-author group activity"
                }
            ),
            &resolve(&ranked, 10),
        );
    }
    Ok(())
}
