//! Quickstart: build a tiny heterogeneous network by hand and ask HeteSim
//! questions about it.
//!
//! Reproduces the paper's running examples: Figure 4 / Example 2 (the
//! meeting probability of Tom and KDD along `A-P-C` is 0.5) and Figure 5
//! (the unnormalized vs normalized relatedness of a single atomic
//! relation).
//!
//! Run with: `cargo run --example quickstart`

use hetesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build the Figure 4 network from scratch --------------------------
    let mut schema = Schema::new();
    let author = schema.add_type("author")?;
    let paper = schema.add_type("paper")?;
    let conf = schema.add_type("conference")?;
    let writes = schema.add_relation("writes", author, paper)?;
    let published = schema.add_relation("published_in", paper, conf)?;

    let mut builder = HinBuilder::new(schema);
    for (a, p) in [
        ("Tom", "P1"),
        ("Tom", "P2"),
        ("Mary", "P2"),
        ("Mary", "P3"),
        ("Bob", "P3"),
        ("Bob", "P4"),
    ] {
        builder.add_edge_by_name(writes, a, p, 1.0)?;
    }
    for (p, c) in [
        ("P1", "KDD"),
        ("P2", "KDD"),
        ("P3", "SIGMOD"),
        ("P4", "SIGMOD"),
    ] {
        builder.add_edge_by_name(published, p, c, 1.0)?;
    }
    let hin = builder.build();
    println!("{}", hetesim::graph::stats::stats(&hin));

    // --- Ask relevance questions along paths ------------------------------
    let engine = HeteSimEngine::new(&hin);
    let apc = MetaPath::parse(hin.schema(), "A-P-C")?;
    let tom = hin.node_id(author, "Tom")?;
    let kdd = hin.node_id(conf, "KDD")?;
    let sigmod = hin.node_id(conf, "SIGMOD")?;

    println!("Relevance of authors to conferences along A-P-C:");
    for a_name in ["Tom", "Mary", "Bob"] {
        let a = hin.node_id(author, a_name)?;
        for (c_name, c) in [("KDD", kdd), ("SIGMOD", sigmod)] {
            let score = engine.pair(&apc, a, c)?;
            println!("  HeteSim({a_name:>4}, {c_name:<6} | APC) = {score:.4}");
        }
    }

    // Example 2: the *unnormalized* meeting probability of Tom and KDD.
    let raw = engine.pair_unnormalized(&apc, tom, kdd)?;
    println!("\nExample 2: unnormalized HeteSim(Tom, KDD | APC) = {raw} (paper: 0.5)");
    assert!((raw - 0.5).abs() < 1e-12);

    // Property 3: symmetry. The reverse query gives the same number.
    let cpa = apc.reversed();
    let forward = engine.pair(&apc, tom, kdd)?;
    let backward = engine.pair(&cpa, kdd, tom)?;
    println!("Symmetry: HeteSim(Tom, KDD | APC) = {forward:.4} = HeteSim(KDD, Tom | CPA) = {backward:.4}");
    assert_eq!(forward, backward);

    // --- Figure 5: relevance across a single atomic relation --------------
    let fig5 = hetesim::data::fixtures::fig5();
    let engine5 = HeteSimEngine::new(&fig5.hin);
    let ab = MetaPath::parse(fig5.hin.schema(), "A-B")?;
    println!("\nFigure 5: relatedness of a2 to b1..b4 across the atomic relation:");
    let a2 = 1u32;
    for b_idx in 0..4u32 {
        let raw = engine5.pair_unnormalized(&ab, a2, b_idx)?;
        let norm = engine5.pair(&ab, a2, b_idx)?;
        let expected = fig5.expected_a2_row[b_idx as usize];
        println!(
            "  a2 ~ b{}: raw {raw:.4} (paper {expected:.4}), normalized {norm:.4}",
            b_idx + 1
        );
        assert!((raw - expected).abs() < 1e-12);
    }
    println!("\nAll paper-example values reproduced exactly.");
    Ok(())
}
