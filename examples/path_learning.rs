//! Automatic relevance-path selection (the paper's Section 5.1,
//! discussion option 3).
//!
//! Enumerates all candidate author→conference meta-paths of the ACM-like
//! schema, labels a few author/conference pairs by the planted ground
//! truth (authors are "relevant" to their home conference), and fits
//! non-negative per-path weights. The learner should discover that the
//! direct publication path `A-P-V-C` explains the labels and down-weight
//! topic detours.
//!
//! Run with: `cargo run --release --example path_learning`

use hetesim::core::learning::{learn_path_weights, LabeledPair, LearnConfig};
use hetesim::data::acm::{generate, AcmConfig, CONFERENCES};
use hetesim::graph::enumerate::enumerate_paths;
use hetesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acm = generate(&AcmConfig::tiny(2012));
    let hin = &acm.hin;
    let engine = HeteSimEngine::with_threads(hin, 4);

    // Candidate paths: every author→conference meta-path up to 5 steps.
    let candidates = enumerate_paths(hin.schema(), acm.authors, acm.conferences, 5);
    println!(
        "{} candidate author→conference paths up to length 5:",
        candidates.len()
    );
    for p in &candidates {
        println!("  {}", p.display(hin.schema()));
    }

    // Labels from the planted structure: each conference anchor is
    // relevant (1.0) to their conference and irrelevant (0.0) to two
    // others.
    let mut examples = Vec::new();
    for (ci, conf) in CONFERENCES.iter().enumerate() {
        let anchor = acm.author_id(&acm.conference_anchors[ci]);
        let own = acm.conference_id(conf);
        examples.push(LabeledPair {
            source: anchor,
            target: own,
            label: 1.0,
        });
        for offset in [3usize, 7] {
            let other = acm.conference_id(CONFERENCES[(ci + offset) % CONFERENCES.len()]);
            examples.push(LabeledPair {
                source: anchor,
                target: other,
                label: 0.0,
            });
        }
    }
    println!("\nFitting weights on {} labeled pairs...", examples.len());

    let fit = learn_path_weights(&engine, &candidates, &examples, LearnConfig::default())?;
    println!("training MSE: {:.5}\n", fit.training_loss);
    println!("{:<16} {:>8}", "path", "weight");
    for &i in &fit.ranked_paths() {
        if fit.weights[i] > 1e-4 {
            println!(
                "{:<16} {:>8.4}",
                fit.paths[i].display(hin.schema()),
                fit.weights[i]
            );
        }
    }

    // The dominant path should follow the direct publication backbone
    // A-P-V-… rather than a topic detour (A-P-T-… / A-P-S-…). Note that
    // several candidates are nearly collinear — `A-P-V-C-V-C` composes the
    // direct path with the almost-identity hop C-V-C (each venue belongs
    // to exactly one conference) — so the learner may pick any of them.
    let best = fit.ranked_paths()[0];
    let dominant = fit.paths[best].display(hin.schema());
    println!("\nlearned dominant path: {dominant}");
    assert!(
        dominant.starts_with("A-P-V-"),
        "expected a publication-backbone path, got {dominant}"
    );
    println!("(a publication-backbone path, as expected — not a topic detour)");
    Ok(())
}
