//! Expert finding through relative importance (the paper's Task 2,
//! Table 3).
//!
//! Because HeteSim is symmetric, the relatedness of an author to their
//! conference is a single number that can be compared *across*
//! conferences: knowing one area's top expert, authors in other areas with
//! a similar score are that area's experts. PCRW's two direction-dependent
//! numbers cannot be compared this way — this example prints both so the
//! contrast is visible.
//!
//! Run with: `cargo run --release --example expert_finding`

use hetesim::data::acm::{generate, AcmConfig, CONFERENCES};
use hetesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acm = generate(&AcmConfig::default());
    let hin = &acm.hin;
    let engine = HeteSimEngine::with_threads(hin, 4);
    let pcrw = Pcrw::new(hin);

    let apvc = MetaPath::parse(hin.schema(), "APVC")?;
    let cvpa = apvc.reversed();

    println!("Known expert: the planted KDD anchor. Scores of each conference's anchor:");
    println!(
        "{:<24} {:>12} {:>12} {:>11} {:>11}",
        "pair", "HeteSim APVC", "HeteSim CVPA", "PCRW APVC", "PCRW CVPA"
    );
    for (ci, conf) in CONFERENCES.iter().enumerate() {
        let anchor = &acm.conference_anchors[ci];
        let a = acm.author_id(anchor);
        let c = acm.conference_id(conf);
        let hs_fwd = engine.pair(&apvc, a, c)?;
        let hs_bwd = engine.pair(&cvpa, c, a)?;
        let pc_fwd = pcrw.score(&apvc, a, c)?;
        let pc_bwd = pcrw.score(&cvpa, c, a)?;
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>11.4} {:>11.4}",
            format!("{anchor}, {conf}"),
            hs_fwd,
            hs_bwd,
            pc_fwd,
            pc_bwd
        );
        assert_eq!(hs_fwd, hs_bwd, "HeteSim must be direction-independent");
    }

    println!(
        "\nHeteSim's two columns are identical (Property 3), so anchor scores are\n\
         comparable across conferences: authors scoring close to a known expert's\n\
         value are experts of their own conference. PCRW's columns disagree —\n\
         ranking by one direction contradicts the other."
    );
    Ok(())
}
