//! Automatic object profiling (the paper's Task 1, Tables 1 and 2).
//!
//! Builds the synthetic ACM-like network and extracts the academic profile
//! of the planted star author — top conferences, terms, subjects and
//! co-authors — and of the KDD conference, each facet being a top-k
//! HeteSim query along a different relevance path.
//!
//! Run with: `cargo run --release --example object_profiling`

use hetesim::data::acm::{generate, AcmConfig};
use hetesim::prelude::*;

fn profile(
    engine: &HeteSimEngine<'_>,
    path_text: &str,
    source: &str,
    k: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let hin = engine.hin();
    let path = MetaPath::parse(hin.schema(), path_text)?;
    let src = hin.node_id(path.source_type(), source)?;
    let target_ty = path.target_type();
    println!(
        "\n  {} of {source} (path {}):",
        hin.schema().type_name(target_ty),
        path.display(hin.schema())
    );
    for (rank, r) in engine.top_k(&path, src, k)?.iter().enumerate() {
        println!(
            "    {}. {:<24} {:.4}",
            rank + 1,
            hin.node_name(target_ty, r.index),
            r.score
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acm = generate(&AcmConfig::default());
    let engine = HeteSimEngine::with_threads(&acm.hin, 4);

    println!(
        "=== Table 1 style: profile of the star author {:?} ===",
        acm.star_concentrated
    );
    for path in ["APVC", "APT", "APS", "APA"] {
        profile(&engine, path, &acm.star_concentrated, 5)?;
    }

    println!("\n=== Table 2 style: profile of the KDD conference ===");
    for path in ["CVPA", "CVPAF", "CVPS", "CVPAPVC"] {
        profile(&engine, path, "KDD", 5)?;
    }

    let stats = engine.cache_stats();
    println!(
        "\n(half-path cache: {} hits, {} builds, {} entries, {} bytes)",
        stats.hits, stats.misses, stats.entries, stats.bytes
    );
    Ok(())
}
