//! Recommendation with relevance search — the introduction's motivating
//! scenario: "in a recommendation system, we need to know the relatedness
//! between users and movies", and "a teenager may like *Harry Potter* more
//! than *The Shawshank Redemption*".
//!
//! Builds a synthetic user–movie–genre–actor–demographic network with
//! weighted (star-rating) edges and recommends movies to a teen user along
//! three paths with different semantics:
//!
//! * `U-D-U-M`   — what people in my demographic watch,
//! * `U-M-G-M`   — movies sharing genres with what I rated,
//! * `U-M-C-M`   — movies sharing cast with what I rated.
//!
//! Run with: `cargo run --release --example recommendation`

use hetesim::data::movies::{generate, MoviesConfig, DEMOGRAPHICS};
use hetesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&MoviesConfig::default());
    let hin = &data.hin;
    let engine = HeteSimEngine::with_threads(hin, 4);

    // Pick the first teen user.
    let teen_idx = data
        .user_demographic
        .iter()
        .position(|&d| DEMOGRAPHICS[d] == "teen")
        .expect("some teen exists") as u32;
    let teen = hin.node_name(data.users, teen_idx).to_string();
    println!("recommending for {teen} (demographic: teen)\n");

    for (path_text, meaning) in [
        ("U-D-U-M", "what people in my demographic watch"),
        ("U-M-G-M", "movies sharing genres with my ratings"),
        ("U-M-C-M", "movies sharing cast with my ratings"),
    ] {
        let path = MetaPath::parse(hin.schema(), path_text)?;
        let recs = engine.top_k(&path, teen_idx, 5)?;
        println!("top 5 along {path_text} ({meaning}):");
        for (i, r) in recs.iter().enumerate() {
            println!(
                "  {}. {:<24} {:.4}",
                i + 1,
                hin.node_name(data.movies, r.index),
                r.score
            );
        }
        println!();
    }

    // The intro's claim, quantified: the teen blockbuster ranks above the
    // senior blockbuster for this teen along the demographic path.
    let udum = MetaPath::parse(hin.schema(), "U-D-U-M")?;
    let teen_hit = data.movie_id(&data.blockbusters[0]);
    let senior_hit = data.movie_id(&data.blockbusters[3]);
    let s_teen = engine.pair(&udum, teen_idx, teen_hit)?;
    let s_senior = engine.pair(&udum, teen_idx, senior_hit)?;
    println!(
        "HeteSim({teen}, {} | UDUM) = {s_teen:.4}  >  HeteSim({teen}, {} | UDUM) = {s_senior:.4}",
        data.blockbusters[0], data.blockbusters[3]
    );
    assert!(
        s_teen > s_senior,
        "the teen blockbuster should outrank the senior one"
    );
    println!("— the teenager indeed relates more to their blockbuster.");
    Ok(())
}
