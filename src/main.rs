//! Workspace-root binary: `cargo run -- <command> …` behaves exactly like
//! `hetesim-cli`.

fn main() -> std::process::ExitCode {
    hetesim_cli::run()
}
