#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # HeteSim — relevance search in heterogeneous information networks
//!
//! A from-scratch Rust implementation of *"Relevance Search in
//! Heterogeneous Networks"* (Shi, Kong, Yu, Xie, Wu — EDBT 2012), including
//! every substrate the paper's evaluation needs: sparse linear algebra, a
//! heterogeneous network store with meta-path machinery, the HeteSim
//! measure itself, the baseline measures it is compared against (PCRW,
//! PathSim, SimRank, RWR), spectral clustering and ranking metrics, and
//! synthetic ACM/DBLP-like dataset generators.
//!
//! This facade crate re-exports the workspace members under stable names;
//! downstream users depend on `hetesim` alone.
//!
//! ## Quick start
//!
//! ```
//! use hetesim::prelude::*;
//!
//! // Build the paper's Figure 4 toy network: Tom's papers are all in KDD.
//! let fig4 = hetesim::data::fixtures::fig4();
//! let hin = &fig4.hin;
//!
//! let engine = HeteSimEngine::new(hin);
//! let apc = MetaPath::parse(hin.schema(), "A-P-C").unwrap();
//! let authors = hin.schema().type_id("author").unwrap();
//! let confs = hin.schema().type_id("conference").unwrap();
//! let tom = hin.node_id(authors, "Tom").unwrap();
//! let kdd = hin.node_id(confs, "KDD").unwrap();
//!
//! // Example 2 of the paper: the raw meeting probability is 0.5 …
//! assert!((engine.pair_unnormalized(&apc, tom, kdd).unwrap() - 0.5).abs() < 1e-12);
//! // … and relevance is symmetric: HeteSim(t, c | P) == HeteSim(c, t | P⁻¹).
//! let cpa = apc.reversed();
//! assert_eq!(
//!     engine.pair(&apc, tom, kdd).unwrap(),
//!     engine.pair(&cpa, kdd, tom).unwrap(),
//! );
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`sparse`] | CSR/COO/dense matrices, SpGEMM, chain products |
//! | [`graph`] | schema, network store, meta-path parsing |
//! | [`core`] | the HeteSim engine, decomposition, top-k search |
//! | [`baselines`] | PCRW, PathSim, SimRank, random walk with restart |
//! | [`ml`] | eigensolvers, Normalized Cut, k-means, NMI/AUC |
//! | [`data`] | synthetic ACM/DBLP generators and paper fixtures |
//! | [`serve`] | zero-dependency HTTP query server: worker pool, deadlines, load shedding, budgeted cache |

pub use hetesim_baselines as baselines;
pub use hetesim_core as core;
pub use hetesim_data as data;
pub use hetesim_graph as graph;
pub use hetesim_ml as ml;
pub use hetesim_serve as serve;
pub use hetesim_sparse as sparse;

/// The most common imports, bundled.
pub mod prelude {
    pub use hetesim_baselines::{PathSim, Pcrw};
    pub use hetesim_core::{HeteSimEngine, PathMeasure, Ranked};
    pub use hetesim_graph::{Hin, HinBuilder, MetaPath, Schema};
    pub use hetesim_sparse::{CooMatrix, CsrMatrix, DenseMatrix};
}
